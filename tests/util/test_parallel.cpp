#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace greenhpc::util {
namespace {

TEST(ThreadPool, ExecutesAllIterationsExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::atomic<long> sum{0};
  pool.parallel_for(100, [&](std::size_t i) { sum += static_cast<long>(i); });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(50, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 50);
  }
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 42) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // Pool survives the exception.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, NestedParallelForRunsSerially) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.parallel_for(8, [&](std::size_t) {
    // Nested call must not deadlock; it degrades to serial execution.
    parallel_for(4, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 32);
}

TEST(ThreadPool, GlobalPoolSingleton) {
  ThreadPool& a = ThreadPool::global();
  ThreadPool& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1u);
}

TEST(ThreadPool, PreallocatedSlotWritesAreThreadCountInvariant) {
  // The sweep-runner pattern: each iteration computes into its own
  // preallocated slot, so the gathered results must be bit-identical
  // regardless of how many workers executed the loop.
  const auto work = [](std::size_t i) {
    double acc = 1.0 + static_cast<double>(i);
    for (int k = 0; k < 250; ++k) {
      acc = acc * 1.000000059604644775390625 + 1e-9 * static_cast<double>(k % 7);
    }
    return acc;
  };
  constexpr std::size_t kSlots = 512;
  std::vector<double> one(kSlots), many(kSlots);
  {
    ThreadPool pool(1);
    pool.parallel_for(kSlots, [&](std::size_t i) { one[i] = work(i); });
  }
  {
    ThreadPool pool(8);
    pool.parallel_for(kSlots, [&](std::size_t i) { many[i] = work(i); });
  }
  for (std::size_t i = 0; i < kSlots; ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(one[i]), std::bit_cast<std::uint64_t>(many[i]))
        << "slot " << i;
  }
}

TEST(ThreadPool, EnvThreadOverrideParsing) {
  // Save and restore whatever the harness environment carries.
  const char* saved = std::getenv("GREENHPC_THREADS");
  const std::string saved_value = saved != nullptr ? saved : "";

  ASSERT_EQ(setenv("GREENHPC_THREADS", "7", 1), 0);
  EXPECT_EQ(ThreadPool::env_thread_override(), 7u);
  ASSERT_EQ(setenv("GREENHPC_THREADS", "1", 1), 0);
  EXPECT_EQ(ThreadPool::env_thread_override(), 1u);
  // Unset, empty, zero, negative and garbage all mean "no override".
  ASSERT_EQ(unsetenv("GREENHPC_THREADS"), 0);
  EXPECT_EQ(ThreadPool::env_thread_override(), 0u);
  ASSERT_EQ(setenv("GREENHPC_THREADS", "", 1), 0);
  EXPECT_EQ(ThreadPool::env_thread_override(), 0u);
  ASSERT_EQ(setenv("GREENHPC_THREADS", "0", 1), 0);
  EXPECT_EQ(ThreadPool::env_thread_override(), 0u);
  ASSERT_EQ(setenv("GREENHPC_THREADS", "-3", 1), 0);
  EXPECT_EQ(ThreadPool::env_thread_override(), 0u);
  ASSERT_EQ(setenv("GREENHPC_THREADS", "lots", 1), 0);
  EXPECT_EQ(ThreadPool::env_thread_override(), 0u);

  if (saved != nullptr) {
    ASSERT_EQ(setenv("GREENHPC_THREADS", saved_value.c_str(), 1), 0);
  } else {
    ASSERT_EQ(unsetenv("GREENHPC_THREADS"), 0);
  }
}

TEST(ThreadPoolChunked, ExecutesAllIterationsExactlyOnce) {
  ThreadPool pool(4);
  for (const std::size_t grain : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for_chunked(hits.size(), grain,
                              [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1) << "grain " << grain;
  }
}

TEST(ThreadPoolChunked, GrainLargerThanNFallsBackToSerial) {
  ThreadPool pool(4);
  // One chunk covers everything: the crossover logic must run the body
  // inline on the calling thread, in order.
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.parallel_for_chunked(16, 100, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolChunked, SingleWorkerPoolFallsBackToSerial) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::size_t count = 0;  // not atomic: the fallback contract is serial
  pool.parallel_for_chunked(200, 1, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++count;
  });
  EXPECT_EQ(count, 200u);
}

TEST(ThreadPoolChunked, ZeroGrainPicksHeuristic) {
  ThreadPool pool(3);
  // default_grain aims at ~8 chunks per team member and never returns 0.
  EXPECT_GE(pool.default_grain(1), 1u);
  EXPECT_GE(pool.default_grain(1000000), 1u);
  std::vector<std::atomic<int>> hits(5000);
  pool.parallel_for_chunked(hits.size(), 0,
                            [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPoolChunked, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for_chunked(100, 4,
                                         [&](std::size_t i) {
                                           if (i == 42) throw std::runtime_error("boom");
                                         }),
               std::runtime_error);
  std::atomic<int> count{0};
  pool.parallel_for_chunked(10, 1, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolChunked, ExceptionContractHoldsUnderRepeatedFailures) {
  // The documented exception contract, hammered: the first exception is
  // rethrown on the calling thread, unstarted chunks are abandoned, and
  // the pool stays fully usable round after round. Runs clean under tsan
  // (the CI tsan job executes the ThreadPool* filters).
  ThreadPool pool(4);
  for (int round = 0; round < 25; ++round) {
    std::atomic<std::size_t> executed{0};
    bool caught = false;
    try {
      pool.parallel_for_chunked(10000, 8, [&](std::size_t i) {
        executed.fetch_add(1, std::memory_order_relaxed);
        if (i == 3) throw std::runtime_error("round failure");
      });
    } catch (const std::runtime_error& e) {
      caught = true;
      EXPECT_STREQ(e.what(), "round failure");
    }
    EXPECT_TRUE(caught) << "round " << round;
    // Cancel-on-error: the failing chunk sits at the front, so the vast
    // majority of the 10k iterations must have been abandoned.
    EXPECT_LT(executed.load(), 10000u) << "round " << round;
    // Pool is unpoisoned: the next loop runs every iteration.
    std::atomic<std::size_t> count{0};
    pool.parallel_for_chunked(200, 4,
                              [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 200u) << "round " << round;
  }
}

TEST(ThreadPoolChunked, ConcurrentThrowersPropagateExactlyOne) {
  // Every chunk throws from every executor at once: exactly one exception
  // must surface on the caller (never terminate, never deadlock), and it
  // must be one of the thrown ones.
  ThreadPool pool(8);
  int caught = 0;
  try {
    pool.parallel_for_chunked(512, 1, [&](std::size_t i) {
      throw std::runtime_error("thrower " + std::to_string(i));
    });
  } catch (const std::runtime_error& e) {
    ++caught;
    EXPECT_EQ(std::string(e.what()).rfind("thrower ", 0), 0u);
  }
  EXPECT_EQ(caught, 1);
  std::atomic<int> count{0};
  pool.parallel_for_chunked(32, 1, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPoolChunked, SerialFallbackPropagatesExceptionInPlace) {
  // Single-worker pools take the serial path; the contract degrades to a
  // plain loop: the exception propagates at the throwing iteration and
  // later iterations do not run.
  ThreadPool pool(1);
  std::size_t executed = 0;
  EXPECT_THROW(pool.parallel_for_chunked(100, 1,
                                         [&](std::size_t i) {
                                           ++executed;
                                           if (i == 5) {
                                             throw std::runtime_error("serial");
                                           }
                                         }),
               std::runtime_error);
  EXPECT_EQ(executed, 6u);
  std::size_t after = 0;
  pool.parallel_for_chunked(10, 1, [&](std::size_t) { ++after; });
  EXPECT_EQ(after, 10u);
}

TEST(ThreadPoolChunked, NestedCallRunsSerially) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.parallel_for_chunked(8, 1, [&](std::size_t) {
    EXPECT_TRUE(ThreadPool::in_parallel_region());
    parallel_for_chunked(4, 1, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 32);
  EXPECT_FALSE(ThreadPool::in_parallel_region());
}

TEST(ThreadPoolChunked, PreallocatedSlotWritesAreThreadCountInvariant) {
  const auto work = [](std::size_t i) {
    double acc = 1.0 + static_cast<double>(i);
    for (int k = 0; k < 250; ++k) {
      acc = acc * 1.000000059604644775390625 + 1e-9 * static_cast<double>(k % 7);
    }
    return acc;
  };
  constexpr std::size_t kSlots = 512;
  std::vector<double> one(kSlots), many(kSlots);
  {
    ThreadPool pool(1);  // serial-fallback path
    pool.parallel_for_chunked(kSlots, 3, [&](std::size_t i) { one[i] = work(i); });
  }
  {
    ThreadPool pool(8);  // dispatched path
    pool.parallel_for_chunked(kSlots, 3, [&](std::size_t i) { many[i] = work(i); });
  }
  for (std::size_t i = 0; i < kSlots; ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(one[i]), std::bit_cast<std::uint64_t>(many[i]))
        << "slot " << i;
  }
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  std::vector<double> xs(10000);
  std::iota(xs.begin(), xs.end(), 0.0);
  std::vector<double> squares(xs.size());
  parallel_for(xs.size(), [&](std::size_t i) { squares[i] = xs[i] * xs[i]; });
  double parallel_total = 0.0;
  for (double v : squares) parallel_total += v;
  double serial_total = 0.0;
  for (double v : xs) serial_total += v * v;
  EXPECT_DOUBLE_EQ(parallel_total, serial_total);
}

}  // namespace
}  // namespace greenhpc::util
