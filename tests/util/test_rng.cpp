#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace greenhpc::util {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(5.0, 9.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(Rng, UniformMeanConverges) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.stddev(), std::sqrt(1.0 / 12.0), 0.01);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(3, 8);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 8);
    saw_lo |= v == 3;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(17);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(23);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.exponential(0.5));
  EXPECT_NEAR(s.mean(), 2.0, 0.05);
}

TEST(Rng, WeibullMeanMatchesGammaFormula) {
  Rng rng(29);
  const double shape = 0.9, scale = 100.0;
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.weibull(shape, scale));
  const double expected = scale * std::tgamma(1.0 + 1.0 / shape);
  EXPECT_NEAR(s.mean() / expected, 1.0, 0.02);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(31);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(static_cast<double>(rng.poisson(3.5)));
  EXPECT_NEAR(s.mean(), 3.5, 0.1);
  EXPECT_NEAR(s.variance(), 3.5, 0.2);
}

TEST(Rng, PoissonLargeMeanUsesApproximation) {
  Rng rng(37);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(static_cast<double>(rng.poisson(200.0)));
  EXPECT_NEAR(s.mean(), 200.0, 1.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(200.0), 0.5);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(41);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, CategoricalProportions) {
  Rng rng(43);
  std::vector<double> weights = {1.0, 2.0, 7.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.categorical(weights)];
  EXPECT_NEAR(counts[0] / 100000.0, 0.1, 0.01);
  EXPECT_NEAR(counts[1] / 100000.0, 0.2, 0.01);
  EXPECT_NEAR(counts[2] / 100000.0, 0.7, 0.01);
}

TEST(Rng, CategoricalSkipsZeroWeights) {
  Rng rng(47);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.categorical(weights), 1u);
}

TEST(Rng, LogUniformRangeAndShape) {
  Rng rng(53);
  RunningStats log_s;
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.log_uniform(1.0, 128.0);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 128.0);
    log_s.add(std::log2(v));
  }
  EXPECT_NEAR(log_s.mean(), 3.5, 0.05);  // uniform in [0,7] bits
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(59);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, PreconditionViolationsThrow) {
  Rng rng(61);
  EXPECT_THROW((void)rng.uniform(2.0, 1.0), InvalidArgument);
  EXPECT_THROW((void)rng.uniform_int(5, 4), InvalidArgument);
  EXPECT_THROW((void)rng.normal(0.0, -1.0), InvalidArgument);
  EXPECT_THROW((void)rng.exponential(0.0), InvalidArgument);
  EXPECT_THROW((void)rng.weibull(0.0, 1.0), InvalidArgument);
  EXPECT_THROW((void)rng.poisson(0.0), InvalidArgument);
  EXPECT_THROW((void)rng.bernoulli(1.5), InvalidArgument);
  EXPECT_THROW((void)rng.categorical({}), InvalidArgument);
  EXPECT_THROW((void)rng.categorical({0.0, 0.0}), InvalidArgument);
  EXPECT_THROW((void)rng.log_uniform(0.0, 1.0), InvalidArgument);
}

}  // namespace
}  // namespace greenhpc::util
