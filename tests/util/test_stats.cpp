#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace greenhpc::util {
namespace {

TEST(RunningStats, EmptyIsZeroed) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook sample
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SampleVarianceUsesBesselCorrection) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 1.0);
  EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-12);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.7) * 10.0 + i * 0.01;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  RunningStats a_copy = a;
  a.merge(b);  // empty rhs: unchanged
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a_copy);  // empty lhs: adopts rhs
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0 / 3.0), 20.0);
}

TEST(Percentile, UnsortedInputAndSingleton) {
  std::vector<double> xs = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
  std::vector<double> one = {7.0};
  EXPECT_DOUBLE_EQ(percentile(one, 0.9), 7.0);
}

TEST(Percentile, Preconditions) {
  std::vector<double> xs;
  EXPECT_THROW((void)percentile(xs, 0.5), greenhpc::InvalidArgument);
  std::vector<double> ok = {1.0};
  EXPECT_THROW((void)percentile(ok, 1.5), greenhpc::InvalidArgument);
}

TEST(Summarize, FullSummary) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.median, 50.5, 1e-9);
  EXPECT_NEAR(s.p25, 25.75, 1e-9);
  EXPECT_NEAR(s.p75, 75.25, 1e-9);
  EXPECT_GT(s.p95, 90.0);
}

TEST(Summarize, EmptyYieldsZeroes) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Mape, BasicAndZeroSkip) {
  std::vector<double> actual = {100.0, 200.0, 0.0};
  std::vector<double> forecast = {110.0, 180.0, 50.0};
  // Zero actual is skipped: mean of 10% and 10%.
  EXPECT_NEAR(mape(actual, forecast), 0.10, 1e-12);
}

TEST(Mape, PerfectForecastIsZero) {
  std::vector<double> a = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mape(a, a), 0.0);
}

TEST(Rmse, KnownValue) {
  std::vector<double> a = {1.0, 2.0, 3.0};
  std::vector<double> f = {2.0, 2.0, 5.0};
  EXPECT_NEAR(rmse(a, f), std::sqrt((1.0 + 0.0 + 4.0) / 3.0), 1e-12);
}

TEST(Rmse, LengthMismatchThrows) {
  std::vector<double> a = {1.0};
  std::vector<double> f = {1.0, 2.0};
  EXPECT_THROW((void)rmse(a, f), greenhpc::InvalidArgument);
}

TEST(Pearson, PerfectCorrelations) {
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> y = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> yn = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(x, yn), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesIsZero) {
  std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> c = {5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(pearson(x, c), 0.0);
}

TEST(Histogram, CountsAndClamping) {
  std::vector<double> xs = {-1.0, 0.1, 0.5, 0.9, 2.0};
  const auto h = histogram(xs, 0.0, 1.0, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0], 2u);  // -1 clamped in, 0.1
  EXPECT_EQ(h[1], 3u);  // 0.5, 0.9, 2.0 clamped in
}

TEST(Histogram, Preconditions) {
  std::vector<double> xs = {1.0};
  EXPECT_THROW((void)histogram(xs, 0.0, 1.0, 0), greenhpc::InvalidArgument);
  EXPECT_THROW((void)histogram(xs, 1.0, 1.0, 2), greenhpc::InvalidArgument);
}

}  // namespace
}  // namespace greenhpc::util
