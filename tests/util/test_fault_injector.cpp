#include "util/fault_injector.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace greenhpc::util {
namespace {

/// The injector is process-global state: every test must leave it
/// disarmed and non-lethal or it would leak fault specs into unrelated
/// tests in this binary.
class FaultInjectorTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FaultInjector::global().disarm();
    FaultInjector::global().set_lethal(false);
  }
};

TEST_F(FaultInjectorTest, DisarmedConsultNeverFiresAndCountsNothing) {
  FaultInjector& inj = FaultInjector::global();
  inj.disarm();
  EXPECT_FALSE(inj.armed());
  FaultHit hit;
  EXPECT_FALSE(inj.consult("worker.block", hit));
  EXPECT_FALSE(inj.match_value("case.poison", 3, hit));
  EXPECT_EQ(inj.occurrences("worker.block"), 0u);
}

TEST_F(FaultInjectorTest, OccurrenceWindowFiresExactlyAtToAtPlusCount) {
  FaultInjector& inj = FaultInjector::global();
  inj.arm({{"worker.block", 2, 3, FaultAction::Stall, 50}});
  FaultHit hit;
  // Occurrences 0..6: the [2, 5) window fires on 2, 3 and 4 only.
  for (int n = 0; n < 7; ++n) {
    const bool fired = inj.consult("worker.block", hit);
    EXPECT_EQ(fired, n >= 2 && n < 5) << "occurrence " << n;
    if (fired) {
      EXPECT_EQ(hit.action, FaultAction::Stall);
      EXPECT_EQ(hit.param, 50u);
    }
  }
  EXPECT_EQ(inj.occurrences("worker.block"), 7u);
}

TEST_F(FaultInjectorTest, SitesCountIndependently) {
  FaultInjector& inj = FaultInjector::global();
  inj.arm({{"a", 1, 1, FaultAction::Fail, 0}});
  FaultHit hit;
  EXPECT_FALSE(inj.consult("a", hit));  // occurrence 0
  // Consults of OTHER sites must not advance a's counter.
  EXPECT_FALSE(inj.consult("b", hit));
  EXPECT_FALSE(inj.consult("b", hit));
  EXPECT_TRUE(inj.consult("a", hit));  // occurrence 1
}

TEST_F(FaultInjectorTest, ArmResetsOccurrenceCounters) {
  FaultInjector& inj = FaultInjector::global();
  inj.arm({{"site", 0, 1, FaultAction::Fail, 0}});
  FaultHit hit;
  EXPECT_TRUE(inj.consult("site", hit));
  EXPECT_FALSE(inj.consult("site", hit));  // window consumed
  inj.arm({{"site", 0, 1, FaultAction::Fail, 0}});
  EXPECT_EQ(inj.occurrences("site"), 0u);
  EXPECT_TRUE(inj.consult("site", hit)) << "re-arm must reset counters";
}

TEST_F(FaultInjectorTest, MatchValueFiresEveryTimeWithoutACounter) {
  FaultInjector& inj = FaultInjector::global();
  inj.arm({{"case.poison", 7, 1, FaultAction::Kill, 0}});
  FaultHit hit;
  // A poisoned case stays poisoned: the same value fires repeatedly.
  EXPECT_TRUE(inj.match_value("case.poison", 7, hit));
  EXPECT_TRUE(inj.match_value("case.poison", 7, hit));
  EXPECT_EQ(hit.action, FaultAction::Kill);
  EXPECT_FALSE(inj.match_value("case.poison", 8, hit));
  // match_value consumes no occurrence counter.
  EXPECT_EQ(inj.occurrences("case.poison"), 0u);
}

TEST_F(FaultInjectorTest, LethalFlagIsIndependentOfArming) {
  FaultInjector& inj = FaultInjector::global();
  EXPECT_FALSE(inj.lethal());
  inj.set_lethal(true);
  EXPECT_TRUE(inj.lethal());
  inj.disarm();
  EXPECT_TRUE(inj.lethal()) << "disarm must not clear lethality";
  inj.set_lethal(false);
}

TEST_F(FaultInjectorTest, EncodeDecodeRoundTripsEverySpecField) {
  const std::vector<FaultSpec> specs = {
      {"worker.start", 0, 1, FaultAction::Kill, 0},
      {"worker.heartbeat", 3, 12, FaultAction::Drop, 0},
      {"worker.report", 1, 1, FaultAction::BitFlip, 4095},
      {"journal.append", 2, 1, FaultAction::ShortWrite, 17},
      {"case.poison", 11, 1, FaultAction::Kill, 0},
  };
  const std::string text = FaultInjector::encode(specs);
  // argv-safe: no spaces, ever.
  EXPECT_EQ(text.find(' '), std::string::npos);
  std::vector<FaultSpec> back;
  ASSERT_TRUE(FaultInjector::decode(text, back));
  ASSERT_EQ(back.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(back[i].site, specs[i].site);
    EXPECT_EQ(back[i].at, specs[i].at);
    EXPECT_EQ(back[i].count, specs[i].count);
    EXPECT_EQ(back[i].action, specs[i].action);
    EXPECT_EQ(back[i].param, specs[i].param);
  }
}

TEST_F(FaultInjectorTest, DecodeRejectsMalformedText) {
  std::vector<FaultSpec> out;
  EXPECT_FALSE(FaultInjector::decode("site:1:1", out));         // too few fields
  EXPECT_FALSE(FaultInjector::decode("site:1:1:kill:0:9", out));  // too many
  EXPECT_FALSE(FaultInjector::decode(":1:1:kill:0", out));      // empty site
  EXPECT_FALSE(FaultInjector::decode("site:x:1:kill:0", out));  // bad number
  EXPECT_FALSE(FaultInjector::decode("site:1:1:explode:0", out));  // bad action
  EXPECT_TRUE(FaultInjector::decode("", out));  // empty = no specs
  EXPECT_TRUE(out.empty());
}

TEST_F(FaultInjectorTest, ActionNamesRoundTripThroughParse) {
  for (const FaultAction a :
       {FaultAction::Fail, FaultAction::Kill, FaultAction::Stall,
        FaultAction::Delay, FaultAction::Drop, FaultAction::Truncate,
        FaultAction::BitFlip, FaultAction::ShortWrite}) {
    FaultAction back = FaultAction::Fail;
    ASSERT_TRUE(FaultInjector::parse_action(FaultInjector::action_name(a), back));
    EXPECT_EQ(back, a);
  }
}

TEST_F(FaultInjectorTest, ArmingAnEmptyListIsDisarm) {
  FaultInjector& inj = FaultInjector::global();
  inj.arm({{"site", 0, 1, FaultAction::Fail, 0}});
  EXPECT_TRUE(inj.armed());
  inj.arm({});
  EXPECT_FALSE(inj.armed());
}

}  // namespace
}  // namespace greenhpc::util
