#include "util/deadline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace greenhpc::util {
namespace {

// Satellite hardening: the coordinator's failure detectors hang off
// these exact semantics — a deadline that is off by one boundary
// comparison turns into a liveness bug that only shows under load.

TEST(Deadline, DefaultConstructedIsExpiredAtTimeZero) {
  const Deadline d;
  EXPECT_TRUE(d.expired(0.0));
  EXPECT_DOUBLE_EQ(d.remaining_s(0.0), 0.0);
}

TEST(Deadline, ZeroDelayExpiresAtTheCreationInstant) {
  const Deadline d(5.0, 0.0);
  EXPECT_FALSE(d.expired(4.999999));
  EXPECT_TRUE(d.expired(5.0));  // boundary is inclusive
  EXPECT_DOUBLE_EQ(d.remaining_s(5.0), 0.0);
}

TEST(Deadline, NegativeDelayIsAlreadyExpired) {
  // A negative timeout (misconfigured knob) must fail CLOSED — the
  // detector fires immediately instead of never.
  const Deadline d(5.0, -1.0);
  EXPECT_TRUE(d.expired(4.0));
  EXPECT_TRUE(d.expired(5.0));
  EXPECT_DOUBLE_EQ(d.remaining_s(4.5), 0.0);
}

TEST(Deadline, ExpiryBoundaryIsInclusiveExactly) {
  const Deadline d(1.0, 2.0);
  EXPECT_DOUBLE_EQ(d.at_s(), 3.0);
  EXPECT_FALSE(d.expired(std::nextafter(3.0, 0.0)));
  EXPECT_TRUE(d.expired(3.0));
  EXPECT_TRUE(d.expired(std::nextafter(3.0, 4.0)));
}

TEST(Deadline, RemainingClampsToZeroPastExpiry) {
  const Deadline d(0.0, 1.0);
  EXPECT_DOUBLE_EQ(d.remaining_s(0.25), 0.75);
  EXPECT_DOUBLE_EQ(d.remaining_s(1.0), 0.0);
  EXPECT_DOUBLE_EQ(d.remaining_s(100.0), 0.0);  // never negative
}

TEST(Deadline, ExtendRearmsFromNowNotFromTheOldDeadline) {
  Deadline d(0.0, 1.0);
  d.extend(0.9, 1.0);  // heartbeat arrived at 0.9
  EXPECT_FALSE(d.expired(1.5));
  EXPECT_DOUBLE_EQ(d.at_s(), 1.9);
  // Extending an already-expired deadline revives it.
  d.extend(10.0, 0.5);
  EXPECT_FALSE(d.expired(10.4));
  EXPECT_TRUE(d.expired(10.5));
}

TEST(Deadline, ArithmeticNearOverflowSaturatesInsteadOfWrapping) {
  const double huge = std::numeric_limits<double>::max();
  // now + delay overflows double range: the sum saturates to +infinity,
  // which reads as "never expires for any finite now" — the safe
  // direction for a liveness timeout (no spurious detector firing).
  const Deadline far(huge, huge);
  EXPECT_TRUE(std::isinf(far.at_s()));
  EXPECT_FALSE(far.expired(huge));
  EXPECT_TRUE(std::isinf(far.remaining_s(0.0)));

  // An explicit infinite delay behaves the same way (the coordinator
  // models "knob disabled" as an infinite deadline).
  const Deadline off(0.0, std::numeric_limits<double>::infinity());
  EXPECT_FALSE(off.expired(huge));
}

TEST(MonotoneClock, NeverRunsBackwardsAndStartsAtZero) {
  const MonotoneClock clock;
  double prev = clock.now_s();
  EXPECT_GE(prev, 0.0);
  for (int i = 0; i < 1000; ++i) {
    const double now = clock.now_s();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

}  // namespace
}  // namespace greenhpc::util
