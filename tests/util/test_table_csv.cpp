#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace greenhpc::util {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"bb", "22"});
  const std::string out = t.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // Header and rows share a line layout: every line ends without trailing
  // content loss.
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, TitleIsRendered) {
  Table t({"c"});
  const std::string out = t.str("My Title");
  EXPECT_EQ(out.rfind("== My Title ==", 0), 0u);
}

TEST(Table, NumericRowFormatting) {
  Table t({"label", "x", "y"});
  t.add_row_numeric("row", {1.234567, 2.0}, 2);
  const std::string out = t.str();
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("2.00"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NO_THROW((void)t.str());
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), greenhpc::InvalidArgument);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 3), "3.142");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
}

TEST(Csv, PlainRow) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(CsvWriter::escape("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, NumericRowRoundTrips) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row("label", {1.5, 2.25, 1e-7});
  EXPECT_EQ(os.str(), "label,1.5,2.25,1e-07\n");
}

}  // namespace
}  // namespace greenhpc::util
