#include "util/time_series.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace greenhpc::util {
namespace {

TimeSeries ramp(std::size_t n, Duration step = minutes(1.0)) {
  TimeSeries ts(seconds(0.0), step);
  for (std::size_t i = 0; i < n; ++i) ts.push_back(static_cast<double>(i));
  return ts;
}

TEST(TimeSeries, BasicAccessors) {
  TimeSeries ts(hours(1.0), minutes(15.0), {1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(ts.size(), 4u);
  EXPECT_FALSE(ts.empty());
  EXPECT_DOUBLE_EQ(ts.start().hours(), 1.0);
  EXPECT_DOUBLE_EQ(ts.end().hours(), 2.0);
  EXPECT_DOUBLE_EQ(ts.at(2), 3.0);
  EXPECT_THROW((void)ts.at(4), greenhpc::InvalidArgument);
}

TEST(TimeSeries, InvalidStepThrows) {
  EXPECT_THROW(TimeSeries(seconds(0.0), seconds(0.0)), greenhpc::InvalidArgument);
  EXPECT_THROW(TimeSeries(seconds(0.0), seconds(-1.0)), greenhpc::InvalidArgument);
}

TEST(TimeSeries, SampleAtZeroOrderHold) {
  TimeSeries ts(seconds(0.0), minutes(10.0), {5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(ts.sample_at(seconds(0.0)), 5.0);
  EXPECT_DOUBLE_EQ(ts.sample_at(minutes(9.99)), 5.0);
  EXPECT_DOUBLE_EQ(ts.sample_at(minutes(10.0)), 7.0);
  EXPECT_DOUBLE_EQ(ts.sample_at(minutes(29.9)), 9.0);
  EXPECT_THROW((void)ts.sample_at(minutes(30.0)), greenhpc::InvalidArgument);
  EXPECT_THROW((void)ts.sample_at(seconds(-1.0)), greenhpc::InvalidArgument);
}

TEST(TimeSeries, SampleAtClampedExtends) {
  TimeSeries ts(hours(1.0), minutes(10.0), {5.0, 7.0});
  EXPECT_DOUBLE_EQ(ts.sample_at_clamped(seconds(0.0)), 5.0);
  EXPECT_DOUBLE_EQ(ts.sample_at_clamped(hours(10.0)), 7.0);
  EXPECT_DOUBLE_EQ(ts.sample_at_clamped(hours(1.05)), 5.0);
}

TEST(TimeSeries, IntegrateWholeSeries) {
  // 3 samples of 1 minute each: (1 + 2 + 3) * 60.
  TimeSeries ts(seconds(0.0), minutes(1.0), {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(ts.integrate(seconds(0.0), minutes(3.0)), 360.0);
}

TEST(TimeSeries, IntegratePartialWindows) {
  TimeSeries ts(seconds(0.0), minutes(1.0), {1.0, 2.0, 3.0});
  // Half of the first sample.
  EXPECT_DOUBLE_EQ(ts.integrate(seconds(0.0), seconds(30.0)), 30.0);
  // From mid-first to mid-second: 30*1 + 30*2.
  EXPECT_DOUBLE_EQ(ts.integrate(seconds(30.0), seconds(90.0)), 90.0);
  // Zero-length window.
  EXPECT_DOUBLE_EQ(ts.integrate(seconds(42.0), seconds(42.0)), 0.0);
}

TEST(TimeSeries, IntegratePowerToEnergy) {
  // Constant 1 kW over 2 hours = 7.2e6 J.
  TimeSeries power(seconds(0.0), minutes(30.0), {1000.0, 1000.0, 1000.0, 1000.0});
  EXPECT_DOUBLE_EQ(power.integrate(seconds(0.0), hours(2.0)), 7.2e6);
}

TEST(TimeSeries, MeanOver) {
  TimeSeries ts(seconds(0.0), minutes(1.0), {2.0, 4.0});
  EXPECT_DOUBLE_EQ(ts.mean_over(seconds(0.0), minutes(2.0)), 3.0);
  EXPECT_DOUBLE_EQ(ts.mean_over(seconds(0.0), minutes(1.0)), 2.0);
  EXPECT_THROW((void)ts.mean_over(minutes(1.0), minutes(1.0)), greenhpc::InvalidArgument);
}

TEST(TimeSeries, DownsampleMean) {
  const TimeSeries ts = ramp(6);
  const TimeSeries down = ts.downsample_mean(2);
  ASSERT_EQ(down.size(), 3u);
  EXPECT_DOUBLE_EQ(down.at(0), 0.5);
  EXPECT_DOUBLE_EQ(down.at(1), 2.5);
  EXPECT_DOUBLE_EQ(down.at(2), 4.5);
  EXPECT_DOUBLE_EQ(down.step().minutes(), 2.0);
}

TEST(TimeSeries, DownsampleTrailingPartialWindow) {
  const TimeSeries ts = ramp(5);
  const TimeSeries down = ts.downsample_mean(2);
  ASSERT_EQ(down.size(), 3u);
  EXPECT_DOUBLE_EQ(down.at(2), 4.0);  // single trailing sample
}

TEST(TimeSeries, DailyMean) {
  TimeSeries ts(seconds(0.0), hours(6.0), {});
  for (int day = 0; day < 3; ++day) {
    for (int q = 0; q < 4; ++q) ts.push_back(static_cast<double>(day * 10));
  }
  const TimeSeries daily = ts.daily_mean();
  ASSERT_EQ(daily.size(), 3u);
  EXPECT_DOUBLE_EQ(daily.at(0), 0.0);
  EXPECT_DOUBLE_EQ(daily.at(1), 10.0);
  EXPECT_DOUBLE_EQ(daily.at(2), 20.0);
}

TEST(TimeSeries, DailyMeanRequiresDividingStep) {
  TimeSeries ts(seconds(0.0), hours(7.0), {1.0, 2.0, 3.0, 4.0});
  EXPECT_THROW((void)ts.daily_mean(), greenhpc::InvalidArgument);
}

TEST(TimeSeries, RollingMeanSmoothsAndPreservesLength) {
  const TimeSeries ts = ramp(5);
  const TimeSeries smooth = ts.rolling_mean(3);
  ASSERT_EQ(smooth.size(), 5u);
  EXPECT_DOUBLE_EQ(smooth.at(0), 0.5);  // truncated window {0,1}
  EXPECT_DOUBLE_EQ(smooth.at(2), 2.0);  // {1,2,3}
  EXPECT_DOUBLE_EQ(smooth.at(4), 3.5);  // {3,4}
}

TEST(TimeSeries, MapTransformsElementwise) {
  const TimeSeries ts = ramp(3);
  const TimeSeries doubled = ts.map([](double v) { return 2.0 * v; });
  EXPECT_DOUBLE_EQ(doubled.at(2), 4.0);
  EXPECT_EQ(doubled.size(), 3u);
}

TEST(TimeSeries, SlicePreservesTimeAlignment) {
  const TimeSeries ts = ramp(10);
  const TimeSeries mid = ts.slice(3, 4);
  ASSERT_EQ(mid.size(), 4u);
  EXPECT_DOUBLE_EQ(mid.start().minutes(), 3.0);
  EXPECT_DOUBLE_EQ(mid.at(0), 3.0);
  EXPECT_THROW((void)ts.slice(8, 5), greenhpc::InvalidArgument);
}

TEST(TimeSeries, SummaryOfSamples) {
  const TimeSeries ts = ramp(101);
  const Summary s = ts.summary();
  EXPECT_EQ(s.count, 101u);
  EXPECT_DOUBLE_EQ(s.mean, 50.0);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
}

TEST(TimeSeries, AutocorrelationBasics) {
  // Perfectly periodic signal: correlation 1 at the period, negative at
  // the half period.
  TimeSeries ts(seconds(0.0), minutes(1.0));
  for (int i = 0; i < 400; ++i) {
    ts.push_back(std::sin(2.0 * 3.14159265358979 * i / 40.0));
  }
  EXPECT_DOUBLE_EQ(ts.autocorrelation(0), 1.0);
  EXPECT_GT(ts.autocorrelation(40), 0.95);
  EXPECT_LT(ts.autocorrelation(20), -0.9);
}

TEST(TimeSeries, AutocorrelationDegenerateCases) {
  TimeSeries constant(seconds(0.0), minutes(1.0), {5.0, 5.0, 5.0, 5.0});
  EXPECT_DOUBLE_EQ(constant.autocorrelation(1), 0.0);
  TimeSeries tiny(seconds(0.0), minutes(1.0), {1.0, 2.0});
  EXPECT_DOUBLE_EQ(tiny.autocorrelation(5), 0.0);
}

TEST(TimeSeries, IntegralAdditivity) {
  // Property: integral over [a,c] == [a,b] + [b,c] for arbitrary cuts.
  const TimeSeries ts = ramp(100, seconds(37.0));
  const Duration a = seconds(100.0), b = seconds(1234.5), c = seconds(3000.0);
  const double whole = ts.integrate(a, c);
  const double split = ts.integrate(a, b) + ts.integrate(b, c);
  EXPECT_NEAR(whole, split, 1e-9 * std::max(1.0, std::fabs(whole)));
}

}  // namespace
}  // namespace greenhpc::util
