#include "core/sweep_worker.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/sweep_journal.hpp"
#include "core/sweep_protocol.hpp"
#include "sched/easy_backfill.hpp"
#include "sched/fcfs.hpp"
#include "util/subprocess.hpp"

namespace greenhpc::core {
namespace {

SweepGrid small_grid() {
  SweepGrid grid;
  grid.base.cluster.nodes = 16;
  grid.base.cluster.tick = minutes(5.0);
  grid.base.region = carbon::Region::Germany;
  grid.base.trace_span = days(2.0);
  grid.base.trace_step = minutes(30.0);
  grid.base.workload.job_count = 12;
  grid.base.workload.span = hours(12.0);
  grid.base.workload.max_job_nodes = 8;
  grid.base.seed = 77;
  grid.regions = {carbon::Region::Germany, carbon::Region::France};
  grid.seed_replicas = 3;
  grid.policies.push_back(
      {"fcfs", [] { return std::make_unique<sched::FcfsScheduler>(); }});
  grid.policies.push_back(
      {"easy", [] { return std::make_unique<sched::EasyBackfillScheduler>(); }});
  return grid;  // 2 regions x 2 policies x 3 replicas = 12 cases
}

/// The coordinator side of a worker conversation, over real pipes with
/// the worker running on a thread — the in-process twin of the
/// fork/exec'd `sweep-worker` command.
class WorkerHarness {
 public:
  explicit WorkerHarness(SweepWorker::Options opts, const SweepGrid& grid) {
    EXPECT_EQ(::pipe(to_worker_), 0);
    EXPECT_EQ(::pipe(from_worker_), 0);
    opts.in_fd = to_worker_[0];
    opts.out_fd = from_worker_[1];
    in_ = std::make_unique<util::LineChannel>(from_worker_[0]);
    thread_ = std::thread(
        [this, opts = std::move(opts), &grid] { rc_ = SweepWorker(opts).run(grid); });
  }

  ~WorkerHarness() {
    close_stdin();
    if (thread_.joinable()) thread_.join();
    ::close(to_worker_[0]);
    ::close(from_worker_[0]);
    ::close(from_worker_[1]);
  }

  void close_stdin() {
    if (to_worker_[1] >= 0) {
      ::close(to_worker_[1]);
      to_worker_[1] = -1;
    }
  }

  bool send(const std::string& sealed_line) {
    return util::write_all(to_worker_[1], sealed_line + "\n");
  }

  /// Next control message from the worker, counting skipped heartbeats.
  /// Shipped stat/trace telemetry is skipped too — these tests pin the
  /// control conversation; test_obs_ship.cpp owns the obs plane.
  Message next_skipping_heartbeats() {
    std::string line;
    for (;;) {
      while (!in_->next_line(line)) {
        if (in_->fill() == util::LineChannel::Fill::Eof) return Message{};
      }
      const Message m = parse_message(line);
      if (m.kind == MsgKind::Heartbeat) {
        ++heartbeats_;
        continue;
      }
      if (m.kind == MsgKind::Stat || m.kind == MsgKind::Trace) continue;
      return m;
    }
  }

  int join() {
    if (thread_.joinable()) thread_.join();
    return rc_;
  }

  /// Count the heartbeats still sitting in the pipe (call after join).
  std::size_t drain_heartbeats() {
    std::string line;
    for (;;) {
      while (in_->next_line(line)) {
        if (parse_message(line).kind == MsgKind::Heartbeat) ++heartbeats_;
      }
      if (util::poll_readable({from_worker_[0]}, 0.0).empty()) break;
      if (in_->fill() == util::LineChannel::Fill::Eof) break;
    }
    return heartbeats_;
  }

  [[nodiscard]] std::size_t heartbeats() const { return heartbeats_; }

 private:
  int to_worker_[2] = {-1, -1};
  int from_worker_[2] = {-1, -1};
  std::unique_ptr<util::LineChannel> in_;
  std::thread thread_;
  std::size_t heartbeats_ = 0;
  int rc_ = -1;
};

TEST(SweepWorker, HelloAssignReportShutdownConversation) {
  const SweepGrid grid = small_grid();
  const SweepCaseRunner runner(grid);
  SweepWorker::Options opts;
  opts.block = 4;
  opts.heartbeat_interval_s = 0.02;
  WorkerHarness h(std::move(opts), grid);

  const Message hello = h.next_skipping_heartbeats();
  ASSERT_EQ(hello.kind, MsgKind::Hello);
  EXPECT_EQ(hello.config_digest, grid.config_digest());
  EXPECT_EQ(hello.cases, grid.case_count());
  EXPECT_EQ(hello.block_size, 4u);
  EXPECT_GT(hello.pid, 0);

  // Assign the last (short) block first, then the first — the worker
  // serves leases in whatever order the coordinator picks.
  ASSERT_TRUE(h.send(encode_assign(8, 4)));
  Message rec = h.next_skipping_heartbeats();
  ASSERT_EQ(rec.kind, MsgKind::Block);
  EXPECT_EQ(rec.block.start, 8u);
  ASSERT_EQ(rec.block.cases.size(), 4u);
  EXPECT_EQ(sweep_block_digest(rec.block), rec.block.digest_after);

  ASSERT_TRUE(h.send(encode_assign(0, 4)));
  rec = h.next_skipping_heartbeats();
  ASSERT_EQ(rec.kind, MsgKind::Block);
  EXPECT_EQ(rec.block.start, 0u);
  // The reported metrics are the runner's own, bit for bit.
  for (std::size_t i = 0; i < rec.block.cases.size(); ++i) {
    const SweepCaseOutcome expected = runner.run_case(i);
    ASSERT_TRUE(rec.block.cases[i].ok);
    EXPECT_EQ(rec.block.cases[i].metrics.total_carbon_t,
              expected.metrics.total_carbon_t);
    EXPECT_EQ(rec.block.cases[i].metrics.mean_wait_h, expected.metrics.mean_wait_h);
  }

  // Idle worker: heartbeats must keep flowing between assignments.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  ASSERT_TRUE(h.send(encode_shutdown()));
  EXPECT_EQ(h.join(), 0);
  EXPECT_GE(h.drain_heartbeats(), 1u);
}

TEST(SweepWorker, JournalsTheBlockBeforeReportingIt) {
  const SweepGrid grid = small_grid();
  const std::string dir = ::testing::TempDir() + "greenhpc_worker_shard";
  std::filesystem::remove_all(dir);

  SweepWorker::Options opts;
  opts.block = 6;
  opts.shard_path = dir + "/" + SweepJournal::shard_file_name(0, "w0");
  WorkerHarness h(std::move(opts), grid);
  ASSERT_EQ(h.next_skipping_heartbeats().kind, MsgKind::Hello);

  ASSERT_TRUE(h.send(encode_assign(6, 6)));
  const Message rec = h.next_skipping_heartbeats();
  ASSERT_EQ(rec.kind, MsgKind::Block);

  // The moment the report is visible, the shard already holds the record
  // (durability before visibility).
  const SweepJournal::ShardLoad load =
      SweepJournal::load_shards(dir, grid.config_digest(), grid.case_count());
  ASSERT_EQ(load.blocks.size(), 1u);
  EXPECT_EQ(load.blocks[0].start, 6u);
  EXPECT_EQ(load.blocks[0].digest_after, rec.block.digest_after);

  ASSERT_TRUE(h.send(encode_shutdown()));
  EXPECT_EQ(h.join(), 0);
}

TEST(SweepWorker, StdinEofIsACleanExit) {
  const SweepGrid grid = small_grid();
  WorkerHarness h(SweepWorker::Options{}, grid);
  ASSERT_EQ(h.next_skipping_heartbeats().kind, MsgKind::Hello);
  h.close_stdin();
  EXPECT_EQ(h.join(), 0);
}

TEST(SweepWorker, MalformedCoordinatorLineExits2) {
  const SweepGrid grid = small_grid();
  WorkerHarness h(SweepWorker::Options{}, grid);
  ASSERT_EQ(h.next_skipping_heartbeats().kind, MsgKind::Hello);
  ASSERT_TRUE(h.send("complete garbage, no seal"));
  EXPECT_EQ(h.join(), 2);
}

TEST(SweepWorker, MisalignedAssignmentExits2) {
  const SweepGrid grid = small_grid();
  SweepWorker::Options opts;
  opts.block = 4;
  WorkerHarness h(std::move(opts), grid);
  ASSERT_EQ(h.next_skipping_heartbeats().kind, MsgKind::Hello);
  ASSERT_TRUE(h.send(encode_assign(2, 4)));  // not on the block grid
  EXPECT_EQ(h.join(), 2);
}

TEST(SweepWorker, WrongCountAssignmentExits2) {
  const SweepGrid grid = small_grid();  // 12 cases
  SweepWorker::Options opts;
  opts.block = 8;
  WorkerHarness h(std::move(opts), grid);
  ASSERT_EQ(h.next_skipping_heartbeats().kind, MsgKind::Hello);
  ASSERT_TRUE(h.send(encode_assign(8, 8)));  // tail block holds only 4
  EXPECT_EQ(h.join(), 2);
}

TEST(SweepWorker, GridTheRunnerRejectsExits3) {
  SweepGrid empty;  // no policies: SweepCaseRunner refuses it
  WorkerHarness h(SweepWorker::Options{}, empty);
  EXPECT_EQ(h.join(), 3);
}

}  // namespace
}  // namespace greenhpc::core
