#include "core/federation.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "hpcsim/workload.hpp"
#include "sched/easy_backfill.hpp"
#include "testing/helpers.hpp"
#include "util/error.hpp"

namespace greenhpc::core {
namespace {

Federation::Config three_sites() {
  Federation::Config cfg;
  for (auto [name, region] :
       {std::pair{"garching", carbon::Region::Germany},
        std::pair{"lyon", carbon::Region::France},
        std::pair{"krakow", carbon::Region::Poland}}) {
    SiteSpec site;
    site.name = name;
    site.cluster = greenhpc::testing::small_cluster(32);
    site.cluster.tick = minutes(2.0);
    site.region = region;
    cfg.sites.push_back(site);
  }
  cfg.trace_span = days(6.0);
  cfg.seed = 17;
  return cfg;
}

std::vector<hpcsim::JobSpec> workload(int count = 90) {
  hpcsim::WorkloadConfig wl;
  wl.job_count = count;
  wl.span = days(3.0);
  wl.max_job_nodes = 16;
  return hpcsim::WorkloadGenerator(wl, 23).generate();
}

core::SchedulerFactory easy() {
  return [] { return std::make_unique<sched::EasyBackfillScheduler>(); };
}

TEST(Federation, RequiresSites) {
  Federation::Config empty;
  EXPECT_THROW(Federation{empty}, greenhpc::InvalidArgument);
}

TEST(Federation, RoundRobinBalances) {
  Federation fed(three_sites());
  const auto jobs = workload();
  const auto assignment = fed.dispatch(jobs, DispatchPolicy::RoundRobin);
  int counts[3] = {0, 0, 0};
  for (std::size_t s : assignment) ++counts[s];
  EXPECT_NEAR(counts[0], 30, 2);
  EXPECT_NEAR(counts[1], 30, 2);
  EXPECT_NEAR(counts[2], 30, 2);
}

TEST(Federation, GreenestNowPrefersFrance) {
  Federation fed(three_sites());
  const auto jobs = workload();
  const auto assignment = fed.dispatch(jobs, DispatchPolicy::GreenestNow);
  int counts[3] = {0, 0, 0};
  for (std::size_t s : assignment) ++counts[s];
  // France (index 1) is far cleaner than Germany and Poland at all times;
  // the load penalty pulls some overflow elsewhere, but France dominates.
  EXPECT_GT(counts[1], counts[0]);
  EXPECT_GT(counts[1], counts[2]);
}

TEST(Federation, OversizedJobsGoToFittingSites) {
  auto cfg = three_sites();
  cfg.sites[1].cluster.nodes = 8;  // Lyon too small for 16-node jobs
  Federation fed(cfg);
  auto jobs = workload();
  const auto assignment = fed.dispatch(jobs, DispatchPolicy::GreenestNow);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (jobs[j].nodes_requested > 8) {
      EXPECT_NE(assignment[j], 1u);
    }
  }
}

TEST(Federation, JobTooBigForEverySiteThrows) {
  Federation fed(three_sites());
  auto jobs = workload(1);
  jobs[0].nodes_requested = jobs[0].nodes_used = 1000;
  jobs[0].min_nodes = jobs[0].max_nodes = 1000;
  EXPECT_THROW((void)fed.dispatch(jobs, DispatchPolicy::RoundRobin),
               greenhpc::InvalidArgument);
}

TEST(Federation, RunCompletesEverythingAndAggregates) {
  Federation fed(three_sites());
  const auto jobs = workload();
  const auto result = fed.run(jobs, DispatchPolicy::LeastLoaded, easy());
  EXPECT_EQ(result.completed, static_cast<int>(jobs.size()));
  EXPECT_GT(result.total_carbon.grams(), 0.0);
  EXPECT_GT(result.job_carbon.grams(), 0.0);
  EXPECT_LT(result.job_carbon.grams(), result.total_carbon.grams());
  int assigned = 0;
  for (int c : result.jobs_per_site) assigned += c;
  EXPECT_EQ(assigned, static_cast<int>(jobs.size()));
}

TEST(Federation, SpatialShiftingCutsCarbon) {
  // The headline property: carbon-aware dispatch beats round-robin on
  // job-attributed carbon for the same jobs and scheduler.
  Federation fed(three_sites());
  const auto jobs = workload();
  const auto rr = fed.run(jobs, DispatchPolicy::RoundRobin, easy());
  const auto green = fed.run(jobs, DispatchPolicy::GreenestNow, easy());
  const auto forecast = fed.run(jobs, DispatchPolicy::GreenestForecast, easy());
  ASSERT_EQ(rr.completed, green.completed);
  EXPECT_LT(green.job_carbon.grams(), rr.job_carbon.grams() * 0.75);
  EXPECT_LT(forecast.job_carbon.grams(), rr.job_carbon.grams() * 0.75);
}

TEST(Federation, DispatchNames) {
  EXPECT_STREQ(dispatch_name(DispatchPolicy::RoundRobin), "round-robin");
  EXPECT_STREQ(dispatch_name(DispatchPolicy::GreenestForecast), "greenest-forecast");
}

TEST(Federation, DispatchAvoidsBlackedOutSites) {
  auto cfg = three_sites();
  // France dark for the whole submission window: nothing may land there.
  cfg.outages.push_back({1, seconds(0.0), days(4.0)});
  Federation fed(cfg);
  const auto jobs = workload();
  for (auto policy : {DispatchPolicy::RoundRobin, DispatchPolicy::LeastLoaded,
                      DispatchPolicy::GreenestNow, DispatchPolicy::GreenestForecast}) {
    const auto assignment = fed.dispatch(jobs, policy);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      EXPECT_NE(assignment[j], 1u) << dispatch_name(policy);
    }
  }
}

TEST(Federation, AllSitesDownStillDispatches) {
  auto cfg = three_sites();
  for (std::size_t s = 0; s < 3; ++s) cfg.outages.push_back({s, seconds(0.0), days(4.0)});
  Federation fed(cfg);
  // No candidate is up: the job must still be placed somewhere (it queues
  // through the blackout) instead of throwing.
  const auto assignment = fed.dispatch(workload(5), DispatchPolicy::GreenestNow);
  EXPECT_EQ(assignment.size(), 5u);
}

TEST(Federation, SiteBlackoutKillsAndRecoversJobs) {
  auto cfg = three_sites();
  // Germany loses the whole site for 2 h mid-workload.
  cfg.outages.push_back({0, hours(12.0), hours(2.0)});
  Federation fed(cfg);
  const auto jobs = workload();
  const auto result = fed.run(jobs, DispatchPolicy::RoundRobin, easy());
  // The blackout fired (the site had work at noon of day 1)...
  EXPECT_GT(result.node_failures, 0);
  EXPECT_GT(result.job_failures, 0);
  EXPECT_GT(result.lost_node_hours, 0.0);
  // ...yet the generous outage retry budget recovers every job.
  EXPECT_EQ(result.completed, static_cast<int>(jobs.size()));
  EXPECT_EQ(result.jobs_failed, 0);
}

TEST(Federation, GreenestDispatchGoesBlindOnDarkFeeds) {
  auto cfg = three_sites();
  cfg.feed_degradation.resize(3);
  cfg.feed_degradation[1].outage_fraction = 1.0;  // France's feed dark
  Federation fed(cfg);
  EXPECT_FALSE(fed.feed_fresh_at(1, days(1.0)));
  EXPECT_TRUE(fed.feed_fresh_at(0, days(1.0)));
  const auto jobs = workload();
  const auto assignment = fed.dispatch(jobs, DispatchPolicy::GreenestNow);
  // France is the greenest grid by far, but its intensity is unobservable,
  // so greenest-now must not send jobs there on stale data.
  for (std::size_t j = 0; j < jobs.size(); ++j) EXPECT_NE(assignment[j], 1u);
}

TEST(Federation, AllFeedsDarkFallsBackToLeastLoaded) {
  auto cfg = three_sites();
  cfg.feed_degradation.resize(3);
  for (auto& f : cfg.feed_degradation) f.outage_fraction = 1.0;
  Federation fed(cfg);
  const auto jobs = workload();
  const auto green = fed.dispatch(jobs, DispatchPolicy::GreenestNow);
  const auto ll = fed.dispatch(jobs, DispatchPolicy::LeastLoaded);
  EXPECT_EQ(green, ll);
}

TEST(Federation, ValidatesOutageAndFeedConfigs) {
  auto cfg = three_sites();
  cfg.outages.push_back({7, seconds(0.0), hours(1.0)});  // no such site
  EXPECT_THROW(Federation{cfg}, greenhpc::InvalidArgument);
  cfg = three_sites();
  cfg.outages.push_back({0, hours(1.0), seconds(0.0)});  // zero duration
  EXPECT_THROW(Federation{cfg}, greenhpc::InvalidArgument);
  cfg = three_sites();
  cfg.feed_degradation.resize(2);  // wrong arity
  EXPECT_THROW(Federation{cfg}, greenhpc::InvalidArgument);
}

}  // namespace
}  // namespace greenhpc::core
