#include "core/site_model.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace greenhpc::core {
namespace {

TEST(RenewableMix, EffectiveIntensityBlends) {
  RenewableMix mix;
  mix.renewable_fraction = 0.5;
  mix.renewable_ci = grams_per_kwh(20.0);
  mix.residual_ci = grams_per_kwh(400.0);
  EXPECT_DOUBLE_EQ(mix.effective().grams_per_kwh(), 210.0);
  mix.renewable_fraction = 1.0;
  EXPECT_DOUBLE_EQ(mix.effective().grams_per_kwh(), 20.0);
  mix.renewable_fraction = 0.0;
  EXPECT_DOUBLE_EQ(mix.effective().grams_per_kwh(), 400.0);
}

TEST(RenewableMix, InvalidFractionThrows) {
  RenewableMix mix;
  mix.renewable_fraction = 1.5;
  EXPECT_THROW((void)mix.effective(), greenhpc::InvalidArgument);
}

TEST(SiteModel, LrzEmbodiedDominates) {
  // The paper: "for LRZ [20 gCO2/kWh] embodied carbon emissions dominate
  // the overall carbon footprint."
  embodied::ActModel model;
  SiteModel lrz(model, embodied::supermuc_ng(), grams_per_kwh(20.0));
  EXPECT_GT(lrz.embodied_share(), 0.5);
}

TEST(SiteModel, CoalGridOperationalDominates) {
  embodied::ActModel model;
  SiteModel coal(model, embodied::supermuc_ng(), grams_per_kwh(1025.0));
  EXPECT_LT(coal.embodied_share(), 0.05);
}

TEST(SiteModel, OperationalScalesWithLifetimeAndPower) {
  embodied::ActModel model;
  SiteModel site(model, embodied::supermuc_ng(), grams_per_kwh(100.0));
  // 3 MW x 5 y x 100 g/kWh = 13,140 t.
  EXPECT_NEAR(site.operational_lifetime().tonnes(), 3.0e3 * 8760.0 * 5 * 100.0 / 1e6,
              10.0);
}

TEST(SiteModel, CarbonPerPflopYear) {
  embodied::ActModel model;
  SiteModel site(model, embodied::supermuc_ng(), grams_per_kwh(300.0));
  EXPECT_GT(site.tonnes_per_pflop_year(), 0.0);
  // Cleaner grid -> lower footprint per delivered PFLOP-year.
  SiteModel clean(model, embodied::supermuc_ng(), grams_per_kwh(20.0));
  EXPECT_LT(clean.tonnes_per_pflop_year(), site.tonnes_per_pflop_year());
}

TEST(CloudServer, RuleOfThumb70to75PercentRenewable) {
  // The paper (citing Lyu et al.): "for data centers operating with
  // 70-75% renewable energy, the embodied carbon accounts for 50% of the
  // total carbon emissions." Our reference server must reproduce this.
  const CloudServer server;
  RenewableMix mix;
  mix.renewable_ci = grams_per_kwh(15.0);
  mix.residual_ci = grams_per_kwh(460.0);
  mix.renewable_fraction = 0.70;
  const double share70 = cloud_embodied_share(server, mix);
  mix.renewable_fraction = 0.75;
  const double share75 = cloud_embodied_share(server, mix);
  // 50% parity falls inside (or very near) the 70-75% bracket.
  EXPECT_GT(share75, 0.46);
  EXPECT_LT(share70, 0.58);
  EXPECT_GT(share75, share70);
}

TEST(CloudServer, ParityFractionInPaperBracket) {
  const CloudServer server;
  const double parity = renewable_fraction_for_parity(server, grams_per_kwh(15.0),
                                                      grams_per_kwh(460.0));
  EXPECT_GT(parity, 0.62);
  EXPECT_LT(parity, 0.83);
}

TEST(CloudServer, ShareMonotonicInRenewables) {
  const CloudServer server;
  RenewableMix mix;
  double prev = -1.0;
  for (double f = 0.0; f <= 1.0; f += 0.1) {
    mix.renewable_fraction = f;
    const double share = cloud_embodied_share(server, mix);
    EXPECT_GT(share, prev);
    prev = share;
  }
}

TEST(CloudServer, ParityPreconditions) {
  const CloudServer server;
  EXPECT_THROW((void)renewable_fraction_for_parity(server, grams_per_kwh(400.0),
                                                   grams_per_kwh(300.0)),
               greenhpc::InvalidArgument);
}

}  // namespace
}  // namespace greenhpc::core
