// Observability-plane shipping tests: stat/trace wire round-trips, the
// drop-and-count contract for defective obs lines, and — under tsan —
// several in-process workers shipping concurrent snapshot batches while
// the fold stays bit-identical. Fixture names start with "SweepObsShip"
// on purpose: the CI tsan job runs test_core with
// --gtest_filter='Sweep*:ScenarioRunner*', and these are exactly the
// tests whose value doubles under the race detector.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/sweep_coordinator.hpp"
#include "core/sweep_protocol.hpp"
#include "core/sweep_worker.hpp"
#include "obs/metrics.hpp"
#include "sched/easy_backfill.hpp"
#include "sched/fcfs.hpp"
#include "util/subprocess.hpp"

namespace greenhpc::core {
namespace {

SweepGrid small_grid() {
  SweepGrid grid;
  grid.base.cluster.nodes = 16;
  grid.base.cluster.tick = minutes(5.0);
  grid.base.region = carbon::Region::Germany;
  grid.base.trace_span = days(2.0);
  grid.base.trace_step = minutes(30.0);
  grid.base.workload.job_count = 12;
  grid.base.workload.span = hours(12.0);
  grid.base.workload.max_job_nodes = 8;
  grid.base.seed = 77;
  grid.regions = {carbon::Region::Germany, carbon::Region::France};
  grid.seed_replicas = 3;
  grid.policies.push_back(
      {"fcfs", [] { return std::make_unique<sched::FcfsScheduler>(); }});
  grid.policies.push_back(
      {"easy", [] { return std::make_unique<sched::EasyBackfillScheduler>(); }});
  return grid;  // 2 regions x 2 policies x 3 replicas = 12 cases
}

// --- wire round-trips -----------------------------------------------------

TEST(SweepObsShipProtocol, StatLineRoundTripsSnapshotBitExactly) {
  obs::StatSnapshot snap;
  snap.counters = {{"sim.jobs_started", 12345u},
                   {"sweep.case_retries", 0u},
                   {"weird name\twith\nws|pipe", 7u}};
  // Doubles ship as exact 64-bit patterns: values with no short decimal
  // form must survive unchanged.
  snap.gauges = {{"sweep.cases_per_s", 0.1},
                 {"g.negative", -3.75},
                 {"g.tiny", 1e-300}};
  obs::HistogramSnapshot h;
  h.name = "sweep.block_seconds";
  h.bounds = {1e-3, 1e-2, 0.1, 1.0, 10.0};
  h.counts = {0, 3, 11, 2, 0, 1};  // bounds+1, last = overflow
  h.sum = 1.875;
  snap.histograms = {h};

  const std::string line = encode_stat(4242, 987654321u, snap);
  const Message m = parse_message(line);
  ASSERT_EQ(m.kind, MsgKind::Stat);
  EXPECT_EQ(m.pid, 4242);
  EXPECT_EQ(m.remote_now_ns, 987654321u);
  ASSERT_EQ(m.stats.counters.size(), snap.counters.size());
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    EXPECT_EQ(m.stats.counters[i].first, snap.counters[i].first);
    EXPECT_EQ(m.stats.counters[i].second, snap.counters[i].second);
  }
  ASSERT_EQ(m.stats.gauges.size(), snap.gauges.size());
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    EXPECT_EQ(m.stats.gauges[i].first, snap.gauges[i].first);
    EXPECT_EQ(m.stats.gauges[i].second, snap.gauges[i].second);
  }
  ASSERT_EQ(m.stats.histograms.size(), 1u);
  const obs::HistogramSnapshot& rh = m.stats.histograms[0];
  EXPECT_EQ(rh.name, h.name);
  EXPECT_EQ(rh.bounds, h.bounds);
  EXPECT_EQ(rh.counts, h.counts);
  EXPECT_EQ(rh.sum, h.sum);
}

TEST(SweepObsShipProtocol, TraceLineRoundTripsEventBatch) {
  std::vector<obs::RemoteTraceEvent> events(3);
  events[0].name = "worker.block";
  events[0].cat = "fleet";
  events[0].tid = 2;
  events[0].phase = 'X';
  events[0].ts_ns = 1000;
  events[0].dur_ns = 250;
  events[1].name = "worker.assign";
  events[1].cat = "fleet";
  events[1].phase = 'i';
  events[1].ts_ns = 900;
  events[1].value = 512.0;
  events[2].name = "queue depth";
  events[2].cat = "fleet";
  events[2].phase = 'C';
  events[2].ts_ns = 1100;
  events[2].value = 0.125;

  const std::string line = encode_trace(77, 555u, 9u, events);
  const Message m = parse_message(line);
  ASSERT_EQ(m.kind, MsgKind::Trace);
  EXPECT_EQ(m.pid, 77);
  EXPECT_EQ(m.remote_now_ns, 555u);
  EXPECT_EQ(m.trace_dropped, 9u);
  ASSERT_EQ(m.trace_events.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(m.trace_events[i].name, events[i].name) << i;
    EXPECT_EQ(m.trace_events[i].cat, events[i].cat) << i;
    EXPECT_EQ(m.trace_events[i].tid, events[i].tid) << i;
    EXPECT_EQ(m.trace_events[i].phase, events[i].phase) << i;
    EXPECT_EQ(m.trace_events[i].ts_ns, events[i].ts_ns) << i;
    EXPECT_EQ(m.trace_events[i].dur_ns, events[i].dur_ns) << i;
    EXPECT_EQ(m.trace_events[i].value, events[i].value) << i;
  }
}

TEST(SweepObsShipProtocol, DefectiveObsLinesAreRejectedNeverFatal) {
  obs::StatSnapshot snap;
  snap.counters = {{"sweep.case_retries", 3u}};
  const std::string stat_line = encode_stat(1, 2, snap);
  const std::string trace_line = encode_trace(1, 2, 0, {});

  // Any truncation that keeps the verb prefix must classify as
  // ObsRejected (the seal check fails), never Malformed: telemetry is
  // not allowed to kill the connection that ships it.
  for (std::size_t len = 5; len < stat_line.size(); ++len) {
    EXPECT_EQ(parse_message(stat_line.substr(0, len)).kind,
              MsgKind::ObsRejected)
        << "truncated at " << len;
  }
  for (std::size_t len = 6; len < trace_line.size(); ++len) {
    EXPECT_EQ(parse_message(trace_line.substr(0, len)).kind,
              MsgKind::ObsRejected)
        << "truncated at " << len;
  }
  // A flipped byte mid-payload breaks the seal: same classification.
  std::string corrupt = stat_line;
  corrupt[stat_line.size() / 2] ^= 0x20;
  EXPECT_EQ(parse_message(corrupt).kind, MsgKind::ObsRejected);
  // Unsealed garbage that merely claims the verb.
  EXPECT_EQ(parse_message("stat garbage").kind, MsgKind::ObsRejected);
  EXPECT_EQ(parse_message("trace 123 nope").kind, MsgKind::ObsRejected);
  // Control-plane lines keep their strict contract: defects stay fatal.
  const std::string assign = encode_assign(0, 4);
  EXPECT_EQ(parse_message(assign.substr(0, assign.size() - 1)).kind,
            MsgKind::Malformed);
  EXPECT_EQ(parse_message("hello garbage").kind, MsgKind::Malformed);
  // And intact obs lines still parse.
  EXPECT_EQ(parse_message(stat_line).kind, MsgKind::Stat);
  EXPECT_EQ(parse_message(trace_line).kind, MsgKind::Trace);
}

// --- worker shipping ------------------------------------------------------

/// WorkerHarness twin that counts and skips shipped stat/trace lines in
/// addition to heartbeats (see test_sweep_worker.cpp for the original).
class ShipHarness {
 public:
  ShipHarness(SweepWorker::Options opts, const SweepGrid& grid) {
    EXPECT_EQ(::pipe(to_worker_), 0);
    EXPECT_EQ(::pipe(from_worker_), 0);
    opts.in_fd = to_worker_[0];
    opts.out_fd = from_worker_[1];
    in_ = std::make_unique<util::LineChannel>(from_worker_[0]);
    thread_ = std::thread(
        [this, opts = std::move(opts), &grid] { rc_ = SweepWorker(opts).run(grid); });
  }

  ~ShipHarness() {
    close_stdin();
    if (thread_.joinable()) thread_.join();
    ::close(to_worker_[0]);
    ::close(from_worker_[0]);
    ::close(from_worker_[1]);
  }

  void close_stdin() {
    if (to_worker_[1] >= 0) {
      ::close(to_worker_[1]);
      to_worker_[1] = -1;
    }
  }

  bool send(const std::string& sealed_line) {
    return util::write_all(to_worker_[1], sealed_line + "\n");
  }

  /// Next hello/block message; heartbeats and obs lines are counted and
  /// skipped, and the last stat payload is kept for inspection.
  Message next_control() {
    std::string line;
    for (;;) {
      while (!in_->next_line(line)) {
        if (in_->fill() == util::LineChannel::Fill::Eof) return Message{};
      }
      Message m = parse_message(line);
      if (m.kind == MsgKind::Heartbeat) continue;
      if (m.kind == MsgKind::Stat) {
        ++stat_batches_;
        last_stat_ = std::move(m);
        continue;
      }
      if (m.kind == MsgKind::Trace) {
        ++trace_batches_;
        continue;
      }
      EXPECT_NE(m.kind, MsgKind::ObsRejected);  // workers never ship junk
      return m;
    }
  }

  /// Count the obs lines still sitting in the pipe (call after join).
  void drain() {
    std::string line;
    for (;;) {
      while (in_->next_line(line)) {
        Message m = parse_message(line);
        if (m.kind == MsgKind::Stat) {
          ++stat_batches_;
          last_stat_ = std::move(m);
        }
        if (m.kind == MsgKind::Trace) ++trace_batches_;
      }
      if (util::poll_readable({from_worker_[0]}, 0.0).empty()) break;
      if (in_->fill() == util::LineChannel::Fill::Eof) break;
    }
  }

  int join() {
    if (thread_.joinable()) thread_.join();
    return rc_;
  }

  [[nodiscard]] std::size_t stat_batches() const { return stat_batches_; }
  [[nodiscard]] std::size_t trace_batches() const { return trace_batches_; }
  [[nodiscard]] const Message& last_stat() const { return last_stat_; }

 private:
  int to_worker_[2] = {-1, -1};
  int from_worker_[2] = {-1, -1};
  std::unique_ptr<util::LineChannel> in_;
  std::thread thread_;
  std::size_t stat_batches_ = 0;
  std::size_t trace_batches_ = 0;
  Message last_stat_;
  int rc_ = -1;
};

TEST(SweepObsShipWorker, ShipsAnchorStatAfterHelloThenPerBlockStats) {
  const SweepGrid grid = small_grid();
  SweepWorker::Options opts;
  opts.block = 4;
  opts.heartbeat_interval_s = 10.0;  // keep heartbeat piggybacks out
  util::ThreadPool pool(2);
  opts.pool = &pool;
  ShipHarness h(std::move(opts), grid);

  const Message hello = h.next_control();
  ASSERT_EQ(hello.kind, MsgKind::Hello);
  ASSERT_TRUE(h.send(encode_assign(0, 4)));
  const Message rec = h.next_control();
  ASSERT_EQ(rec.kind, MsgKind::Block);
  EXPECT_EQ(sweep_block_digest(rec.block), rec.block.digest_after);

  // The anchor stat (right after hello) plus the per-block stat have
  // both passed by the time the block record is visible...
  EXPECT_GE(h.stat_batches(), 1u);
  ASSERT_TRUE(h.send(encode_shutdown()));
  EXPECT_EQ(h.join(), 0);
  h.drain();
  // ...and with the farewell snapshot at least three shipped in total.
  EXPECT_GE(h.stat_batches(), 3u);
  // The last snapshot reflects the finished block: same pid as hello,
  // a block-seconds sample, and a nonzero clock for lane alignment.
  const Message& stat = h.last_stat();
  ASSERT_EQ(stat.kind, MsgKind::Stat);
  EXPECT_EQ(stat.pid, hello.pid);
  EXPECT_GT(stat.remote_now_ns, 0u);
  const obs::HistogramSnapshot* bh =
      stat.stats.find_histogram("sweep.block_seconds");
  ASSERT_NE(bh, nullptr);
  EXPECT_GE(bh->total(), 1u);
}

TEST(SweepObsShipWorker, NoShipStatsKeepsTheWireFreeOfObsLines) {
  const SweepGrid grid = small_grid();
  SweepWorker::Options opts;
  opts.block = 4;
  opts.ship_stats = false;
  util::ThreadPool pool(2);
  opts.pool = &pool;
  ShipHarness h(std::move(opts), grid);
  ASSERT_EQ(h.next_control().kind, MsgKind::Hello);
  ASSERT_TRUE(h.send(encode_assign(0, 4)));
  ASSERT_EQ(h.next_control().kind, MsgKind::Block);
  ASSERT_TRUE(h.send(encode_shutdown()));
  EXPECT_EQ(h.join(), 0);
  h.drain();
  EXPECT_EQ(h.stat_batches(), 0u);
  EXPECT_EQ(h.trace_batches(), 0u);
}

// The tsan anchor: three in-process workers simulate concurrently while
// their heartbeat threads snapshot the (shared, process-global) registry
// and ship stat batches. Shipping must corrupt neither the registry nor
// the results: every delivered case stays bit-identical to the serial
// reference runner, exactly as the digest-neutrality argument claims.
TEST(SweepObsShipWorker, ConcurrentShippingWorkersStayBitIdentical) {
  const SweepGrid grid = small_grid();  // 12 cases -> blocks 0/4/8
  const SweepCaseRunner runner(grid);
  constexpr std::size_t kWorkers = 3;

  std::vector<std::unique_ptr<util::ThreadPool>> pools;
  std::vector<std::unique_ptr<ShipHarness>> workers;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    pools.push_back(std::make_unique<util::ThreadPool>(2));
    SweepWorker::Options opts;
    opts.block = 4;
    opts.heartbeat_interval_s = 0.005;  // hammer the snapshot path
    opts.pool = pools.back().get();
    workers.push_back(std::make_unique<ShipHarness>(std::move(opts), grid));
  }
  for (auto& w : workers) ASSERT_EQ(w->next_control().kind, MsgKind::Hello);
  for (std::size_t w = 0; w < kWorkers; ++w) {
    ASSERT_TRUE(workers[w]->send(encode_assign(w * 4, 4)));
  }
  for (std::size_t w = 0; w < kWorkers; ++w) {
    const Message rec = workers[w]->next_control();
    ASSERT_EQ(rec.kind, MsgKind::Block);
    EXPECT_EQ(rec.block.start, w * 4);
    EXPECT_EQ(sweep_block_digest(rec.block), rec.block.digest_after);
    ASSERT_EQ(rec.block.cases.size(), 4u);
    for (std::size_t i = 0; i < rec.block.cases.size(); ++i) {
      const SweepCaseOutcome expected = runner.run_case(w * 4 + i);
      ASSERT_TRUE(rec.block.cases[i].ok);
      EXPECT_EQ(rec.block.cases[i].metrics.total_carbon_t,
                expected.metrics.total_carbon_t);
      EXPECT_EQ(rec.block.cases[i].metrics.mean_wait_h,
                expected.metrics.mean_wait_h);
      EXPECT_EQ(rec.block.cases[i].metrics.utilization,
                expected.metrics.utilization);
    }
  }
  for (auto& w : workers) ASSERT_TRUE(w->send(encode_shutdown()));
  for (auto& w : workers) EXPECT_EQ(w->join(), 0);
  for (auto& w : workers) {
    w->drain();
    EXPECT_GE(w->stat_batches(), 1u);  // at least the anchor snapshot
  }
}

// --- coordinator end to end -----------------------------------------------

TEST(SweepObsShipCoordinator, GarbageObsLinesAreCountedAndTheSweepCompletes) {
  // A "worker" that speaks nothing but a defective stat line: the
  // coordinator must drop and count it (and dump a postmortem), then
  // declare the worker dead at the hello deadline, degrade in-process,
  // and still produce the exact result — telemetry can never poison a
  // run.
  const SweepGrid grid = small_grid();
  const SweepResult reference = SweepEngine().run(grid);

  const std::string dir = ::testing::TempDir() + "greenhpc_obs_ship_pm";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  SweepCoordinator::Options opts;
  opts.workers = 1;
  // sh -c consumes the trailing --shard-path/--block flags as $0/$1...
  opts.worker_argv = {"/bin/sh", "-c", "echo 'stat garbage'; sleep 60"};
  opts.block = 6;
  opts.hello_timeout_s = 0.3;
  opts.heartbeat_timeout_s = 0.1;
  opts.postmortem_dir = dir;
  SweepCoordinator coord(std::move(opts));
  const SweepResult result = coord.run(grid);

  EXPECT_EQ(result.digest, reference.digest);
  const SweepCoordinator::Stats& stats = coord.stats();
  EXPECT_GE(stats.obs_lines_rejected, 1u);
  EXPECT_EQ(stats.worker_deaths, 1u);
  EXPECT_TRUE(stats.degraded_in_process);
  EXPECT_GE(stats.postmortems_written, 1u);
  ASSERT_EQ(stats.workers.size(), 1u);
  EXPECT_FALSE(stats.workers[0].postmortem_path.empty());
  EXPECT_TRUE(std::filesystem::exists(stats.workers[0].postmortem_path));
}

TEST(SweepObsShipCoordinator, ShippingOnAndOffFoldToTheSameDigest) {
  // In-process twin of the bench_sweep shipping gate: the ship_stats
  // switch must be invisible to the fold.
  const SweepGrid grid = small_grid();
  SweepCoordinator::Options on;
  on.block = 6;
  SweepCoordinator::Options off;
  off.block = 6;
  off.ship_stats = false;
  const SweepResult a = SweepCoordinator(std::move(on)).run(grid);
  const SweepResult b = SweepCoordinator(std::move(off)).run(grid);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(SweepEngine().run(grid).digest, a.digest);
}

}  // namespace
}  // namespace greenhpc::core
