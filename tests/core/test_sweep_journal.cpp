#include "core/sweep_journal.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "sched/easy_backfill.hpp"
#include "sched/fcfs.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace greenhpc::core {
namespace {

ScenarioConfig small_base() {
  ScenarioConfig cfg;
  cfg.cluster.nodes = 16;
  cfg.cluster.tick = minutes(5.0);
  cfg.region = carbon::Region::Germany;
  cfg.trace_span = days(2.0);
  cfg.trace_step = minutes(30.0);
  cfg.workload.job_count = 12;
  cfg.workload.span = hours(12.0);
  cfg.workload.max_job_nodes = 8;
  cfg.seed = 77;
  return cfg;
}

SweepGrid small_grid() {
  SweepGrid grid;
  grid.base = small_base();
  grid.regions = {carbon::Region::Germany, carbon::Region::France};
  grid.cluster_nodes = {16, 32};
  grid.seed_replicas = 3;
  grid.policies.push_back(
      {"fcfs", [] { return std::make_unique<sched::FcfsScheduler>(); }});
  grid.policies.push_back(
      {"easy", [] { return std::make_unique<sched::EasyBackfillScheduler>(); }});
  return grid;
}

/// Fresh run directory per test case; stale journals removed.
std::string run_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "greenhpc_journal_" + name;
  std::remove((dir + "/" + SweepJournal::kFileName).c_str());
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

/// Thrown by a progress callback to interrupt a sweep at a block
/// boundary — the journaled-run equivalent of a SIGKILL between blocks.
struct Interrupt : std::runtime_error {
  Interrupt() : std::runtime_error("interrupted") {}
};

void expect_equal_results(const SweepResult& a, const SweepResult& b) {
  EXPECT_EQ(a.digest, b.digest);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t c = 0; c < a.cells.size(); ++c) {
    EXPECT_EQ(a.cells[c].carbon_t.count(), b.cells[c].carbon_t.count()) << c;
    EXPECT_EQ(a.cells[c].carbon_t.mean(), b.cells[c].carbon_t.mean()) << c;
    EXPECT_EQ(a.cells[c].wait_h.sample_stddev(), b.cells[c].wait_h.sample_stddev())
        << c;
    EXPECT_EQ(a.cells[c].green_share.mean(), b.cells[c].green_share.mean()) << c;
  }
  ASSERT_EQ(a.failed_cases.size(), b.failed_cases.size());
  for (std::size_t i = 0; i < a.failed_cases.size(); ++i) {
    EXPECT_EQ(a.failed_cases[i].flat, b.failed_cases[i].flat);
    EXPECT_EQ(a.failed_cases[i].where, b.failed_cases[i].where);
    EXPECT_EQ(a.failed_cases[i].error, b.failed_cases[i].error);
  }
}

TEST(SweepGridDigest, BindsToExpandedCases) {
  const SweepGrid grid = small_grid();
  EXPECT_EQ(grid.config_digest(), small_grid().config_digest());

  SweepGrid different_seed = small_grid();
  different_seed.base.seed += 1;
  EXPECT_NE(grid.config_digest(), different_seed.config_digest());

  SweepGrid different_axis = small_grid();
  different_axis.cluster_nodes = {16, 64};
  EXPECT_NE(grid.config_digest(), different_axis.config_digest());

  SweepGrid different_label = small_grid();
  different_label.policies[1].label = "easy2";
  EXPECT_NE(grid.config_digest(), different_label.config_digest());

  // An empty axis means "the base value": spelling that out explicitly
  // must hash identically (axes are resolved before hashing).
  SweepGrid explicit_base = small_grid();
  explicit_base.intensity_kinds = {explicit_base.base.intensity_kind};
  EXPECT_EQ(grid.config_digest(), explicit_base.config_digest());
}

TEST(SweepJournal, JournaledRunMatchesPlainRunBitForBit) {
  const SweepGrid grid = small_grid();
  const SweepResult plain = SweepEngine().run(grid);

  const std::string dir = run_dir("plain_vs_journaled");
  SweepJournal journal =
      SweepJournal::create(dir, grid.config_digest(), grid.case_count(), 5);
  SweepEngine::Options opts;
  opts.journal = &journal;
  const SweepResult journaled = SweepEngine(std::move(opts)).run(grid);

  expect_equal_results(plain, journaled);
  EXPECT_EQ(journaled.replayed_cases, 0u);
  EXPECT_EQ(journal.resume_point(), grid.case_count());
}

TEST(SweepJournal, CompleteJournalResumesAsPureReplay) {
  const SweepGrid grid = small_grid();
  const std::string dir = run_dir("pure_replay");
  const SweepResult reference = [&] {
    SweepJournal journal =
        SweepJournal::create(dir, grid.config_digest(), grid.case_count(), 5);
    SweepEngine::Options opts;
    opts.journal = &journal;
    return SweepEngine(std::move(opts)).run(grid);
  }();

  SweepJournal resumed =
      SweepJournal::resume(dir, grid.config_digest(), grid.case_count());
  EXPECT_EQ(resumed.resume_point(), grid.case_count());
  SweepEngine::Options opts;
  opts.journal = &resumed;
  const SweepResult replay = SweepEngine(std::move(opts)).run(grid);
  expect_equal_results(reference, replay);
  EXPECT_EQ(replay.replayed_cases, grid.case_count());
}

TEST(SweepJournal, ResumeAfterEveryBlockBoundaryIsBitIdentical) {
  // The resume contract, exhaustively: interrupt a journaled sweep after
  // EVERY block boundary and resume it — on 1-, 2-, and default-thread
  // pools, with a different requested block size (the journal's recorded
  // block size must win). Digest and aggregates must match the
  // uninterrupted run bit for bit in every combination.
  const SweepGrid grid = small_grid();  // 24 cases
  const std::size_t block = 5;          // -> blocks of 5,5,5,5,4
  const SweepResult reference = SweepEngine().run(grid);
  const std::size_t n_blocks = (grid.case_count() + block - 1) / block;

  const std::size_t thread_counts[] = {1, 2, 0};  // 0 = pool default
  for (std::size_t t = 0; t < 3; ++t) {
    for (std::size_t interrupt_after = 1; interrupt_after < n_blocks;
         ++interrupt_after) {
      const std::string dir =
          run_dir("boundary_" + std::to_string(t) + "_" +
                  std::to_string(interrupt_after));
      {
        SweepJournal journal = SweepJournal::create(dir, grid.config_digest(),
                                                    grid.case_count(), block);
        SweepEngine::Options opts;
        opts.journal = &journal;
        std::size_t blocks_done = 0;
        opts.progress = [&](std::size_t, std::size_t) {
          if (++blocks_done == interrupt_after) throw Interrupt();
        };
        EXPECT_THROW((void)SweepEngine(std::move(opts)).run(grid), Interrupt);
      }
      std::unique_ptr<util::ThreadPool> pool;
      if (thread_counts[t] != 0) {
        pool = std::make_unique<util::ThreadPool>(thread_counts[t]);
      }
      SweepJournal resumed =
          SweepJournal::resume(dir, grid.config_digest(), grid.case_count());
      EXPECT_EQ(resumed.resume_point(), interrupt_after * block);
      SweepEngine::Options opts;
      opts.journal = &resumed;
      opts.pool = pool.get();
      opts.block = 7;  // journal's block size (5) must override this
      const SweepResult result = SweepEngine(std::move(opts)).run(grid);
      expect_equal_results(reference, result);
      EXPECT_EQ(result.replayed_cases, interrupt_after * block);
    }
  }
}

TEST(SweepJournal, ThrowingCaseIsQuarantinedNotFatal) {
  SweepGrid grid = small_grid();
  grid.policies.push_back(
      {"broken", []() -> std::unique_ptr<hpcsim::SchedulingPolicy> {
         throw std::runtime_error("scheduler factory exploded");
       }});
  obs::Counter& quarantined =
      obs::Registry::global().counter("sweep.cases_quarantined");
  const std::uint64_t quarantined_before = quarantined.value();

  SweepEngine::Options opts;
  opts.case_retries = 1;
  opts.retry_backoff_base_s = 0.0;  // deterministic failure: don't wait on it
  const SweepResult result = SweepEngine(std::move(opts)).run(grid);

  // 2 regions x 2 node counts x 3 replicas of the broken policy quarantine;
  // the healthy policies' cells keep their full replica counts.
  ASSERT_EQ(result.failed_cases.size(), 12u);
  for (const SweepFailedCase& f : result.failed_cases) {
    EXPECT_NE(f.where.find("policy=broken"), std::string::npos) << f.where;
    EXPECT_NE(f.error.find("scheduler factory exploded"), std::string::npos);
    EXPECT_EQ(f.attempts, 2);  // 1 attempt + 1 retry
  }
  EXPECT_EQ(quarantined.value() - quarantined_before, 12u);
  for (const SweepCellStats& cell : result.cells) {
    EXPECT_EQ(cell.carbon_t.count(), cell.policy == "broken" ? 0u : 3u);
  }
  // The digest must equal the same grid WITHOUT the broken policy's cases
  // being folded — i.e. healthy cases only, in flat order. Cross-check by
  // determinism: a second run quarantines identically.
  const SweepResult again = SweepEngine(SweepEngine::Options{}).run(grid);
  EXPECT_EQ(again.digest, result.digest);
  ASSERT_EQ(again.failed_cases.size(), 12u);
}

TEST(SweepJournal, TransientFailureIsRetriedToSuccess) {
  SweepGrid grid = small_grid();
  grid.regions = {carbon::Region::Germany};
  grid.cluster_nodes = {16};
  grid.seed_replicas = 2;
  // First construction attempt per process-lifetime counter fails, all
  // later ones succeed — the transient-blip shape retries exist for.
  auto flaky_count = std::make_shared<std::atomic<int>>(0);
  grid.policies.clear();
  grid.policies.push_back(
      {"flaky", [flaky_count]() -> std::unique_ptr<hpcsim::SchedulingPolicy> {
         if (flaky_count->fetch_add(1) == 0) {
           throw std::runtime_error("transient blip");
         }
         return std::make_unique<sched::EasyBackfillScheduler>();
       }});
  obs::Counter& retries = obs::Registry::global().counter("sweep.case_retries");
  const std::uint64_t retries_before = retries.value();

  SweepEngine::Options opts;
  opts.case_retries = 2;
  opts.retry_backoff_base_s = 0.0;
  const SweepResult result = SweepEngine(std::move(opts)).run(grid);

  EXPECT_TRUE(result.failed_cases.empty());
  EXPECT_GE(retries.value() - retries_before, 1u);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_EQ(result.cells[0].carbon_t.count(), 2u);
}

TEST(SweepJournal, ResumedRunReproducesQuarantinedCases) {
  SweepGrid grid = small_grid();
  grid.policies.push_back(
      {"broken", []() -> std::unique_ptr<hpcsim::SchedulingPolicy> {
         throw std::runtime_error("deterministically down");
       }});
  SweepEngine::Options ref_opts;
  ref_opts.case_retries = 0;
  ref_opts.retry_backoff_base_s = 0.0;
  const SweepResult reference = SweepEngine(std::move(ref_opts)).run(grid);

  const std::string dir = run_dir("quarantine_resume");
  {
    SweepJournal journal =
        SweepJournal::create(dir, grid.config_digest(), grid.case_count(), 6);
    SweepEngine::Options opts;
    opts.journal = &journal;
    opts.case_retries = 0;
    opts.retry_backoff_base_s = 0.0;
    std::size_t blocks_done = 0;
    opts.progress = [&](std::size_t, std::size_t) {
      if (++blocks_done == 3) throw Interrupt();
    };
    EXPECT_THROW((void)SweepEngine(std::move(opts)).run(grid), Interrupt);
  }
  SweepJournal resumed =
      SweepJournal::resume(dir, grid.config_digest(), grid.case_count());
  EXPECT_EQ(resumed.resume_point(), 18u);
  SweepEngine::Options opts;
  opts.journal = &resumed;
  opts.case_retries = 0;
  opts.retry_backoff_base_s = 0.0;
  const SweepResult result = SweepEngine(std::move(opts)).run(grid);
  expect_equal_results(reference, result);
}

TEST(SweepJournal, RejectsForeignAndMalformedJournals) {
  const SweepGrid grid = small_grid();
  const std::string dir = run_dir("reject");
  {
    SweepJournal journal =
        SweepJournal::create(dir, grid.config_digest(), grid.case_count(), 5);
    SweepEngine::Options opts;
    opts.journal = &journal;
    (void)SweepEngine(std::move(opts)).run(grid);
  }
  // Wrong grid (different config digest) and wrong case count are both
  // hard errors — silently folding a foreign journal fabricates results.
  EXPECT_THROW((void)SweepJournal::resume(dir, grid.config_digest() ^ 1,
                                          grid.case_count()),
               InvalidArgument);
  EXPECT_THROW(
      (void)SweepJournal::resume(dir, grid.config_digest(), grid.case_count() + 1),
      InvalidArgument);
  // Missing journal directory.
  EXPECT_THROW((void)SweepJournal::resume(run_dir("never_created"),
                                          grid.config_digest(), grid.case_count()),
               InvalidArgument);
  // A corrupt header is unrecoverable: there is nothing valid to fall
  // back to.
  const std::string path = dir + "/" + SweepJournal::kFileName;
  const std::string intact = read_file(path);
  std::string broken_header = intact;
  broken_header[10] ^= 0x4;
  write_file(path, broken_header);
  EXPECT_THROW(
      (void)SweepJournal::resume(dir, grid.config_digest(), grid.case_count()),
      InvalidArgument);
  write_file(path, intact);
  // Engine-side binding: a journal opened for one grid cannot drive a
  // different grid's run.
  SweepGrid other = small_grid();
  other.base.seed += 123;
  SweepJournal journal =
      SweepJournal::resume(dir, grid.config_digest(), grid.case_count());
  SweepEngine::Options opts;
  opts.journal = &journal;
  EXPECT_THROW((void)SweepEngine(std::move(opts)).run(other), InvalidArgument);
}

TEST(SweepJournal, TornTailLineFallsBackToLastValidBlock) {
  const SweepGrid grid = small_grid();
  const SweepResult reference = SweepEngine().run(grid);
  const std::string dir = run_dir("torn");
  {
    SweepJournal journal =
        SweepJournal::create(dir, grid.config_digest(), grid.case_count(), 5);
    SweepEngine::Options opts;
    opts.journal = &journal;
    (void)SweepEngine(std::move(opts)).run(grid);
  }
  const std::string path = dir + "/" + SweepJournal::kFileName;
  const std::string intact = read_file(path);
  // Tear the file mid-way through its final record — the write that a
  // SIGKILL interrupted. The parser must drop the torn line and resume
  // from the last complete block.
  write_file(path, intact.substr(0, intact.size() - 40));
  SweepJournal resumed =
      SweepJournal::resume(dir, grid.config_digest(), grid.case_count());
  EXPECT_EQ(resumed.completed().size(), 4u);  // 5 blocks written, tail torn
  EXPECT_EQ(resumed.resume_point(), 20u);
  SweepEngine::Options opts;
  opts.journal = &resumed;
  const SweepResult result = SweepEngine(std::move(opts)).run(grid);
  expect_equal_results(reference, result);
}

TEST(SweepJournal, BitFlippedRecordDropsItselfAndEverythingAfter) {
  const SweepGrid grid = small_grid();
  const SweepResult reference = SweepEngine().run(grid);
  const std::string dir = run_dir("bitflip");
  {
    SweepJournal journal =
        SweepJournal::create(dir, grid.config_digest(), grid.case_count(), 5);
    SweepEngine::Options opts;
    opts.journal = &journal;
    (void)SweepEngine(std::move(opts)).run(grid);
  }
  const std::string path = dir + "/" + SweepJournal::kFileName;
  std::string content = read_file(path);
  // Flip one bit inside the SECOND block record (a metric nibble, not the
  // checksum): that record and every later one must be discarded, and the
  // resumed sweep must re-simulate from case 5 — still bit-identical.
  std::size_t line_start = content.find('\n') + 1;      // header
  line_start = content.find('\n', line_start) + 1;      // block 0
  const std::size_t flip_at = content.find(" c ", line_start) + 4;
  content[flip_at] = content[flip_at] == '0' ? '1' : '0';
  write_file(path, content);

  SweepJournal resumed =
      SweepJournal::resume(dir, grid.config_digest(), grid.case_count());
  EXPECT_EQ(resumed.completed().size(), 1u);
  EXPECT_EQ(resumed.resume_point(), 5u);
  SweepEngine::Options opts;
  opts.journal = &resumed;
  const SweepResult result = SweepEngine(std::move(opts)).run(grid);
  expect_equal_results(reference, result);
  EXPECT_EQ(result.replayed_cases, 5u);
}

TEST(SweepJournal, AppendOutOfOrderIsALogicError) {
  const std::string dir = run_dir("out_of_order");
  SweepJournal journal = SweepJournal::create(dir, 1, 10, 5);
  SweepJournal::BlockRecord rec;
  rec.start = 5;  // must be 0
  rec.cases.resize(5);
  EXPECT_THROW(journal.append(rec), LogicError);
  EXPECT_EQ(journal.resume_point(), 0u);
}

TEST(SweepJournal, DroppedSuffixIsReportedOnStderrAndCounted) {
  // Satellite hardening: silent truncation in a recovery path is how
  // corruption goes unnoticed. Tearing the journal must produce ONE
  // stderr line naming the file, the first dropped line and the bytes
  // discarded, and bump sweep.journal_truncations.
  const SweepGrid grid = small_grid();
  const std::string dir = run_dir("loud_truncation");
  {
    SweepJournal journal =
        SweepJournal::create(dir, grid.config_digest(), grid.case_count(), 5);
    SweepEngine::Options opts;
    opts.journal = &journal;
    (void)SweepEngine(std::move(opts)).run(grid);
  }
  const std::string path = dir + "/" + SweepJournal::kFileName;
  const std::string intact = read_file(path);
  write_file(path, intact.substr(0, intact.size() - 33));

  obs::Counter& truncations =
      obs::Registry::global().counter("sweep.journal_truncations");
  const std::uint64_t before = truncations.value();
  ::testing::internal::CaptureStderr();
  SweepJournal resumed =
      SweepJournal::resume(dir, grid.config_digest(), grid.case_count());
  const std::string err = ::testing::internal::GetCapturedStderr();

  EXPECT_EQ(truncations.value() - before, 1u);
  EXPECT_NE(err.find(path), std::string::npos) << err;
  EXPECT_NE(err.find("dropped"), std::string::npos) << err;
  // 6 lines (header + 5 blocks): the torn final record is line 6.
  EXPECT_NE(err.find("starting at line 6"), std::string::npos) << err;
  EXPECT_EQ(resumed.completed().size(), 4u);

  // Per-run accounting: the journal instance remembers ITS truncation
  // count (what SweepResult::journal_truncations reports), so two
  // back-to-back sweeps in one process never bleed counts into each
  // other's RunReport — only the obs counter stays process-cumulative.
  EXPECT_EQ(resumed.truncations(), 1u);

  // A clean resume reports nothing, counts nothing, and starts from a
  // zero per-run count of its own.
  ::testing::internal::CaptureStderr();
  const SweepJournal clean_resume =
      SweepJournal::resume(dir, grid.config_digest(), grid.case_count());
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
  EXPECT_EQ(truncations.value() - before, 1u);
  EXPECT_EQ(clean_resume.truncations(), 0u);

  obs::RunReport report;
  report.tool = "greenhpc sweep";
  report.embed_metrics = false;
  report.add("journal_truncations", static_cast<double>(resumed.truncations()));
  std::ostringstream os;
  report.write_json(os);
  EXPECT_NE(os.str().find("\"journal_truncations\": "), std::string::npos);
}

// --- shard mode (distributed sweeps) --------------------------------------

/// Internally-consistent synthetic shard record (the journal verifies the
/// digest re-fold, not the simulation).
SweepJournal::BlockRecord shard_rec(std::size_t cases_total, std::size_t block,
                                    std::size_t start) {
  SweepJournal::BlockRecord rec;
  rec.start = start;
  rec.cases.resize(std::min(block, cases_total - start));
  for (std::size_t i = 0; i < rec.cases.size(); ++i) {
    rec.cases[i].ok = true;
    rec.cases[i].metrics.total_energy_mwh = static_cast<double>(start + i) + 0.25;
  }
  rec.digest_after = sweep_block_digest(rec);
  return rec;
}

/// Fresh directory for shard tests (removes shards from earlier runs).
std::string shard_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "greenhpc_shards_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(SweepShardJournal, OutOfOrderAppendsMergeIntoOneSortedUnion) {
  const std::string dir = shard_dir("union");
  constexpr std::uint64_t kConfig = 0xfeed;
  {
    SweepJournal a = SweepJournal::create_shard(
        dir, SweepJournal::shard_file_name(0, "w0"), kConfig, 10, 4);
    EXPECT_TRUE(a.is_shard());
    a.append(shard_rec(10, 4, 8));  // shard order is completion order,
    a.append(shard_rec(10, 4, 0));  // not case order
    SweepJournal b = SweepJournal::create_shard(
        dir, SweepJournal::shard_file_name(1, "w1"), kConfig, 10, 4);
    b.append(shard_rec(10, 4, 4));
  }
  EXPECT_TRUE(SweepJournal::exists(dir));

  const SweepJournal::ShardLoad load = SweepJournal::load_shards(dir, kConfig, 10);
  ASSERT_EQ(load.blocks.size(), 3u);
  EXPECT_EQ(load.blocks[0].start, 0u);
  EXPECT_EQ(load.blocks[1].start, 4u);
  EXPECT_EQ(load.blocks[2].start, 8u);
  EXPECT_EQ(load.blocks[2].cases.size(), 2u);
  EXPECT_EQ(load.files, 2u);
  EXPECT_EQ(load.duplicate_blocks, 0u);
  EXPECT_EQ(load.max_gen, 1);  // a restart would journal as generation 2
  EXPECT_EQ(load.block, 4u);

  // Foreign shards are rejected exactly like foreign chained journals.
  EXPECT_THROW((void)SweepJournal::load_shards(dir, kConfig ^ 1, 10),
               InvalidArgument);
  EXPECT_THROW((void)SweepJournal::load_shards(dir, kConfig, 11), InvalidArgument);

  // A missing or empty directory is a valid empty load, not an error.
  const SweepJournal::ShardLoad empty =
      SweepJournal::load_shards(shard_dir("never_written"), kConfig, 10);
  EXPECT_TRUE(empty.blocks.empty());
  EXPECT_EQ(empty.files, 0u);
  EXPECT_EQ(empty.max_gen, -1);
}

TEST(SweepShardJournal, AtLeastOnceDuplicatesDedupConflictsThrow) {
  constexpr std::uint64_t kConfig = 0xbeef;
  {
    const std::string dir = shard_dir("dup");
    SweepJournal a = SweepJournal::create_shard(
        dir, SweepJournal::shard_file_name(0, "w0"), kConfig, 8, 4);
    SweepJournal b = SweepJournal::create_shard(
        dir, SweepJournal::shard_file_name(0, "w1"), kConfig, 8, 4);
    // Block 0 delivered twice (a reassignment both halves of which
    // finished): bit-identical records, deduplicated without complaint.
    a.append(shard_rec(8, 4, 0));
    b.append(shard_rec(8, 4, 0));
    b.append(shard_rec(8, 4, 4));
    const SweepJournal::ShardLoad load = SweepJournal::load_shards(dir, kConfig, 8);
    ASSERT_EQ(load.blocks.size(), 2u);
    EXPECT_EQ(load.duplicate_blocks, 1u);
  }
  {
    // The same block with DIFFERENT bits is nondeterminism or corruption:
    // folding either copy could fabricate results, so loading refuses.
    const std::string dir = shard_dir("conflict");
    SweepJournal a = SweepJournal::create_shard(
        dir, SweepJournal::shard_file_name(0, "w0"), kConfig, 8, 4);
    SweepJournal b = SweepJournal::create_shard(
        dir, SweepJournal::shard_file_name(0, "w1"), kConfig, 8, 4);
    a.append(shard_rec(8, 4, 0));
    SweepJournal::BlockRecord twisted = shard_rec(8, 4, 0);
    twisted.cases[1].metrics.total_energy_mwh += 1.0;
    twisted.digest_after = sweep_block_digest(twisted);
    b.append(twisted);
    EXPECT_THROW((void)SweepJournal::load_shards(dir, kConfig, 8), InvalidArgument);
  }
}

TEST(SweepShardJournal, TornLineDropsTheRestOfThatFileOnly) {
  const std::string dir = shard_dir("torn");
  constexpr std::uint64_t kConfig = 0xcafe;
  const std::string name_a = SweepJournal::shard_file_name(0, "w0");
  {
    SweepJournal a =
        SweepJournal::create_shard(dir, name_a, kConfig, 16, 4);
    a.append(shard_rec(16, 4, 0));
    a.append(shard_rec(16, 4, 4));
    a.append(shard_rec(16, 4, 8));  // will sit after the corruption
    SweepJournal b = SweepJournal::create_shard(
        dir, SweepJournal::shard_file_name(0, "w1"), kConfig, 16, 4);
    b.append(shard_rec(16, 4, 4));   // honest duplicate of a's record
    b.append(shard_rec(16, 4, 12));
  }
  // Flip a bit inside a's SECOND record: its valid prefix ends at block
  // 0, so a loses blocks 4 and 8 — but b still proves 4 and 12.
  const std::string path = dir + "/" + name_a;
  std::string content = read_file(path);
  std::size_t line_start = content.find('\n') + 1;  // header
  line_start = content.find('\n', line_start) + 1;  // first record
  content[line_start + 30] ^= 0x1;
  write_file(path, content);

  obs::Counter& truncations =
      obs::Registry::global().counter("sweep.journal_truncations");
  const std::uint64_t before = truncations.value();
  ::testing::internal::CaptureStderr();
  const SweepJournal::ShardLoad load = SweepJournal::load_shards(dir, kConfig, 16);
  const std::string err = ::testing::internal::GetCapturedStderr();

  ASSERT_EQ(load.blocks.size(), 3u);
  EXPECT_EQ(load.blocks[0].start, 0u);
  EXPECT_EQ(load.blocks[1].start, 4u);
  EXPECT_EQ(load.blocks[2].start, 12u);
  EXPECT_EQ(truncations.value() - before, 1u);
  // Per-run accounting rides the ShardLoad so a restarted coordinator
  // can surface ITS truncations without reading the global counter.
  EXPECT_EQ(load.truncations, 1u);
  EXPECT_NE(err.find(path), std::string::npos) << err;
  EXPECT_NE(err.find("starting at line 3"), std::string::npos) << err;
}

TEST(SweepShardJournal, AppendRejectsStructurallyBrokenRecords) {
  const std::string dir = shard_dir("broken_append");
  SweepJournal shard = SweepJournal::create_shard(
      dir, SweepJournal::shard_file_name(0, "w0"), 0x1, 10, 4);

  SweepJournal::BlockRecord misaligned = shard_rec(10, 4, 4);
  misaligned.start = 2;
  EXPECT_THROW(shard.append(misaligned), LogicError);

  SweepJournal::BlockRecord bad_digest = shard_rec(10, 4, 0);
  bad_digest.digest_after ^= 1;
  EXPECT_THROW(shard.append(bad_digest), LogicError);

  SweepJournal::BlockRecord wrong_size = shard_rec(10, 4, 0);
  wrong_size.cases.pop_back();
  wrong_size.digest_after = sweep_block_digest(wrong_size);
  EXPECT_THROW(shard.append(wrong_size), LogicError);

  shard.append(shard_rec(10, 4, 8));  // out-of-order is FINE in shard mode
  shard.append(shard_rec(10, 4, 0));
  EXPECT_EQ(shard.completed().size(), 2u);
}

}  // namespace
}  // namespace greenhpc::core
