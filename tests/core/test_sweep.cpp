#include "core/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "sched/easy_backfill.hpp"
#include "sched/fcfs.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace greenhpc::core {
namespace {

ScenarioConfig small_base() {
  ScenarioConfig cfg;
  cfg.cluster.nodes = 16;
  cfg.cluster.tick = minutes(5.0);
  cfg.region = carbon::Region::Germany;
  cfg.trace_span = days(2.0);
  cfg.trace_step = minutes(30.0);
  cfg.workload.job_count = 12;
  cfg.workload.span = hours(12.0);
  cfg.workload.max_job_nodes = 8;
  cfg.seed = 77;
  return cfg;
}

SweepGrid small_grid() {
  SweepGrid grid;
  grid.base = small_base();
  grid.regions = {carbon::Region::Germany, carbon::Region::France};
  grid.cluster_nodes = {16, 32};
  grid.seed_replicas = 3;
  grid.policies.push_back(
      {"fcfs", [] { return std::make_unique<sched::FcfsScheduler>(); }});
  grid.policies.push_back(
      {"easy", [] { return std::make_unique<sched::EasyBackfillScheduler>(); }});
  return grid;
}

TEST(SweepGrid, CountsAreAxisProducts) {
  const SweepGrid grid = small_grid();
  // 2 regions x 1 kind x 2 node counts x 1 job count x 2 policies.
  EXPECT_EQ(grid.cell_count(), 8u);
  EXPECT_EQ(grid.case_count(), 24u);  // x 3 replicas

  SweepGrid defaults;
  defaults.base = small_base();
  defaults.policies = grid.policies;
  // Empty axes mean "the base value": one cell per policy.
  EXPECT_EQ(defaults.cell_count(), 2u);
  EXPECT_EQ(defaults.case_count(), 2u);
}

TEST(SweepEngine, RejectsDegenerateGrids) {
  const SweepEngine engine;
  SweepGrid no_policies;
  no_policies.base = small_base();
  EXPECT_THROW((void)engine.run(no_policies), InvalidArgument);

  SweepGrid bad_replicas = small_grid();
  bad_replicas.seed_replicas = 0;
  EXPECT_THROW((void)engine.run(bad_replicas), InvalidArgument);

  SweepGrid null_factory = small_grid();
  null_factory.policies[0].scheduler = nullptr;
  EXPECT_THROW((void)engine.run(null_factory), InvalidArgument);
}

TEST(SweepEngine, ReplicaSeedsAreDistinctAndAxisIndependent) {
  std::set<std::uint64_t> seeds;
  for (int r = 0; r < 16; ++r) seeds.insert(SweepEngine::replica_seed(2023, r));
  EXPECT_EQ(seeds.size(), 16u);
  // Replica 0 is already decorrelated from the base seed itself.
  EXPECT_NE(SweepEngine::replica_seed(2023, 0), 2023u);
  // Neighbouring base seeds do not collide on early replicas.
  EXPECT_NE(SweepEngine::replica_seed(2023, 0), SweepEngine::replica_seed(2024, 0));
}

TEST(SweepEngine, CellTableIsCellMajorWithCoordinates) {
  const SweepGrid grid = small_grid();
  const SweepResult result = SweepEngine().run(grid);
  ASSERT_EQ(result.cells.size(), 8u);
  EXPECT_EQ(result.cases, 24u);
  EXPECT_EQ(result.replicas, 3);
  // Policy is the innermost cell axis, then jobs, nodes, kinds, regions.
  EXPECT_EQ(result.cells[0].region, carbon::Region::Germany);
  EXPECT_EQ(result.cells[0].nodes, 16);
  EXPECT_EQ(result.cells[0].policy, "fcfs");
  EXPECT_EQ(result.cells[1].policy, "easy");
  EXPECT_EQ(result.cells[2].nodes, 32);
  EXPECT_EQ(result.cells[4].region, carbon::Region::France);
  for (const SweepCellStats& cell : result.cells) {
    EXPECT_EQ(cell.carbon_t.count(), 3u);  // one observation per replica
    EXPECT_GT(cell.energy_mwh.mean(), 0.0);
    EXPECT_GT(cell.completed.mean(), 0.0);
  }
}

TEST(SweepEngine, DigestInvariantAcrossThreadCountsAndBlockSizes) {
  // The determinism contract: bit-identical aggregates and digest for any
  // fan-out shape. Exercised across pools of 1 / 2 / 8 workers (the first
  // engages the serial fallback) and a block size smaller than the grid.
  const SweepGrid grid = small_grid();
  std::vector<SweepResult> results;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    util::ThreadPool pool(threads);
    SweepEngine::Options opts;
    opts.pool = &pool;
    opts.block = 5;  // forces several partial blocks over the 24 cases
    results.push_back(SweepEngine(std::move(opts)).run(grid));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].digest, results[0].digest) << "pool " << i;
    ASSERT_EQ(results[i].cells.size(), results[0].cells.size());
    for (std::size_t c = 0; c < results[i].cells.size(); ++c) {
      EXPECT_EQ(results[i].cells[c].carbon_t.mean(), results[0].cells[c].carbon_t.mean());
      EXPECT_EQ(results[i].cells[c].wait_h.sample_stddev(),
                results[0].cells[c].wait_h.sample_stddev());
    }
  }
}

TEST(SweepEngine, ProgressReportsMonotonicallyToTotal) {
  SweepGrid grid = small_grid();
  std::vector<std::size_t> done;
  SweepEngine::Options opts;
  opts.block = 7;
  opts.progress = [&](std::size_t d, std::size_t total) {
    EXPECT_EQ(total, 24u);
    done.push_back(d);
  };
  (void)SweepEngine(std::move(opts)).run(grid);
  ASSERT_FALSE(done.empty());
  for (std::size_t i = 1; i < done.size(); ++i) EXPECT_GT(done[i], done[i - 1]);
  EXPECT_EQ(done.back(), 24u);
}

TEST(SweepEngine, ProgressCallbackIsSerializedUnderThreadPool) {
  // The documented contract: progress always runs on the run() thread,
  // between blocks, never concurrently with itself or the block fan-out.
  // Detect any overlap with an atomic in-callback guard; detect any
  // off-thread invocation by comparing thread ids.
  SweepGrid grid = small_grid();
  util::ThreadPool pool(8);
  SweepEngine::Options opts;
  opts.pool = &pool;
  opts.block = 3;  // 24 cases -> 8 progress calls interleaved with fan-out
  std::atomic<int> in_callback{0};
  std::atomic<bool> overlapped{false};
  std::atomic<int> calls{0};
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<bool> wrong_thread{false};
  opts.progress = [&](std::size_t, std::size_t) {
    if (in_callback.fetch_add(1, std::memory_order_acq_rel) != 0) {
      overlapped.store(true, std::memory_order_relaxed);
    }
    if (std::this_thread::get_id() != caller) {
      wrong_thread.store(true, std::memory_order_relaxed);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));  // widen races
    in_callback.fetch_sub(1, std::memory_order_acq_rel);
    calls.fetch_add(1, std::memory_order_relaxed);
  };
  (void)SweepEngine(std::move(opts)).run(grid);
  EXPECT_FALSE(overlapped.load()) << "progress callback ran concurrently";
  EXPECT_FALSE(wrong_thread.load()) << "progress callback left the run() thread";
  EXPECT_EQ(calls.load(), 8);
}

TEST(SweepCellStats, Ci95MatchesNormalApproximation) {
  util::RunningStats s;
  EXPECT_EQ(SweepCellStats::ci95(s), 0.0);
  s.add(1.0);
  EXPECT_EQ(SweepCellStats::ci95(s), 0.0);  // undefined below two samples
  s.add(3.0);
  s.add(5.0);
  const double expect = 1.96 * s.sample_stddev() / std::sqrt(3.0);
  EXPECT_DOUBLE_EQ(SweepCellStats::ci95(s), expect);
}

TEST(ScenarioRunner, RunnersDifferingOnlyInPolicyShareAssets) {
  // The shared-asset bugfix: constructing two runners over the same
  // scenario must not regenerate the trace or the workload — both resolve
  // through the process-wide caches to pointer-identical assets.
  const ScenarioConfig cfg = small_base();
  const ScenarioRunner a(cfg);
  const ScenarioRunner b(cfg);
  EXPECT_EQ(a.trace_ptr().get(), b.trace_ptr().get());
  EXPECT_EQ(a.jobs_ptr().get(), b.jobs_ptr().get());

  // A different seed is a different scenario: assets must NOT be shared.
  ScenarioConfig other = cfg;
  other.seed += 1;
  const ScenarioRunner c(other);
  EXPECT_NE(a.trace_ptr().get(), c.trace_ptr().get());
  EXPECT_NE(a.jobs_ptr().get(), c.jobs_ptr().get());
}

}  // namespace
}  // namespace greenhpc::core
