#include "core/sweep_protocol.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/sweep_wire.hpp"

namespace greenhpc::core {
namespace {

/// A block record exercising both case shapes: exact (including awkward)
/// double bit patterns for the success path, hex-encoded error text with
/// whitespace and non-ASCII bytes for the quarantine path.
SweepBlock sample_block() {
  SweepBlock rec;
  rec.start = 12;
  SweepCaseOutcome ok;
  ok.ok = true;
  ok.metrics.total_carbon_t = 1.25;
  ok.metrics.total_energy_mwh = -0.0;  // signed zero must survive
  ok.metrics.mean_wait_h = 3.5e-321;   // subnormal must survive
  ok.metrics.mean_bounded_slowdown = 7.0;
  ok.metrics.utilization = 0.875;
  ok.metrics.green_energy_share = 1.0 / 3.0;
  ok.metrics.completed = 48.0;
  ok.attempts = 1;
  SweepCaseOutcome bad;
  bad.ok = false;
  bad.attempts = 3;
  bad.error = "scheduler exploded: node 7 | \"quoted\"\nline two\xc3\xa9";
  rec.cases = {ok, bad, ok};
  rec.digest_after = sweep_block_digest(rec);
  return rec;
}

TEST(SweepWire, SealAndUnsealRejectCorruption) {
  const std::string line = wire::seal("hello world 42");
  std::string content;
  ASSERT_TRUE(wire::unseal(line, content));
  EXPECT_EQ(content, "hello world 42");

  std::string flipped = line;
  flipped[1] ^= 0x1;
  EXPECT_FALSE(wire::unseal(flipped, content));

  EXPECT_FALSE(wire::unseal("no trailer here", content));
  EXPECT_FALSE(wire::unseal(line.substr(0, line.size() - 3), content));
  // Checksum over content INCLUDING an embedded " | " stays unambiguous:
  // unseal splits at the LAST separator.
  const std::string tricky = wire::seal("a | b | c");
  ASSERT_TRUE(wire::unseal(tricky, content));
  EXPECT_EQ(content, "a | b | c");
}

TEST(SweepWire, DoubleBitsRoundTripExactly) {
  const double values[] = {0.0, -0.0, 1.0 / 3.0, 3.5e-321, 1e308,
                           -2.5, std::nan("")};
  for (const double v : values) {
    const std::uint64_t bits = wire::double_bits(v);
    std::uint64_t parsed = 0;
    ASSERT_TRUE(wire::parse_hex64(wire::hex64(bits), parsed));
    EXPECT_EQ(parsed, bits);
    EXPECT_EQ(wire::double_bits(wire::bits_double(parsed)), bits);
  }
  std::uint64_t out = 0;
  EXPECT_FALSE(wire::parse_hex64("", out));
  EXPECT_FALSE(wire::parse_hex64("xyz", out));
  EXPECT_FALSE(wire::parse_hex64("0123456789abcdef0", out));  // 17 digits
}

TEST(SweepWire, TextEncodingRoundTripsArbitraryBytes) {
  std::string decoded;
  ASSERT_TRUE(wire::decode_text(wire::encode_text(""), decoded));
  EXPECT_EQ(decoded, "");
  const std::string nasty("tab\t nl\n nul\0 hi\xff", 17);
  ASSERT_TRUE(wire::decode_text(wire::encode_text(nasty), decoded));
  EXPECT_EQ(decoded, nasty);
  EXPECT_FALSE(wire::decode_text("abc", decoded));   // odd length
  EXPECT_FALSE(wire::decode_text("zz", decoded));    // not hex
}

TEST(SweepWire, BlockRoundTripIsExact) {
  const SweepBlock rec = sample_block();
  const std::string line = wire::serialize_block(rec);
  std::string content;
  ASSERT_TRUE(wire::unseal(line, content));
  SweepBlock back;
  ASSERT_TRUE(wire::parse_block(content, back));
  EXPECT_EQ(back.start, rec.start);
  EXPECT_EQ(back.digest_after, rec.digest_after);
  ASSERT_EQ(back.cases.size(), rec.cases.size());
  for (std::size_t i = 0; i < rec.cases.size(); ++i) {
    EXPECT_EQ(back.cases[i].ok, rec.cases[i].ok);
    if (rec.cases[i].ok) {
      EXPECT_EQ(wire::double_bits(back.cases[i].metrics.mean_wait_h),
                wire::double_bits(rec.cases[i].metrics.mean_wait_h));
      EXPECT_EQ(wire::double_bits(back.cases[i].metrics.total_energy_mwh),
                wire::double_bits(rec.cases[i].metrics.total_energy_mwh));
    } else {
      EXPECT_EQ(back.cases[i].attempts, rec.cases[i].attempts);
      EXPECT_EQ(back.cases[i].error, rec.cases[i].error);
    }
  }
  // The parsed record re-folds to the same block-local digest.
  EXPECT_EQ(sweep_block_digest(back), rec.digest_after);
}

TEST(SweepWire, ParseBlockRejectsStructuralDefects) {
  SweepBlock rec;
  EXPECT_FALSE(wire::parse_block("", rec));
  EXPECT_FALSE(wire::parse_block("record 0 1 0", rec));          // wrong verb
  EXPECT_FALSE(wire::parse_block("block 0 1 0 x", rec));        // bad entry tag
  EXPECT_FALSE(wire::parse_block("block 0 2 0 c 1 2 3 4 5 6 7", rec));  // count
  EXPECT_FALSE(wire::parse_block("block 0 1 0 c 1 2 3", rec));  // short metrics
  EXPECT_FALSE(wire::parse_block("block 0 1 0 f 2", rec));      // short failure
}

TEST(SweepProtocol, ControlMessagesRoundTrip) {
  const Message hello = parse_message(encode_hello(4242, 0xdeadbeefcafe, 96, 8));
  EXPECT_EQ(hello.kind, MsgKind::Hello);
  EXPECT_EQ(hello.pid, 4242);
  EXPECT_EQ(hello.config_digest, 0xdeadbeefcafeull);
  EXPECT_EQ(hello.cases, 96u);
  EXPECT_EQ(hello.block_size, 8u);

  const Message hb = parse_message(encode_heartbeat(4242));
  EXPECT_EQ(hb.kind, MsgKind::Heartbeat);
  EXPECT_EQ(hb.pid, 4242);

  const Message assign = parse_message(encode_assign(24, 8));
  EXPECT_EQ(assign.kind, MsgKind::Assign);
  EXPECT_EQ(assign.start, 24u);
  EXPECT_EQ(assign.count, 8u);

  EXPECT_EQ(parse_message(encode_shutdown()).kind, MsgKind::Shutdown);
}

TEST(SweepProtocol, BlockMessageCarriesTheRecord) {
  const SweepBlock rec = sample_block();
  const Message msg = parse_message(encode_block(rec));
  ASSERT_EQ(msg.kind, MsgKind::Block);
  EXPECT_EQ(msg.block.start, rec.start);
  EXPECT_EQ(msg.block.digest_after, rec.digest_after);
  EXPECT_EQ(msg.block.cases.size(), rec.cases.size());
  EXPECT_EQ(sweep_block_digest(msg.block), rec.digest_after);
}

TEST(SweepProtocol, AnyDefectIsMalformedNeverAThrow) {
  EXPECT_EQ(parse_message("").kind, MsgKind::Malformed);
  EXPECT_EQ(parse_message("hello unsealed").kind, MsgKind::Malformed);
  EXPECT_EQ(parse_message(wire::seal("frobnicate 1 2")).kind, MsgKind::Malformed);
  EXPECT_EQ(parse_message(wire::seal("hb")).kind, MsgKind::Malformed);  // arity
  EXPECT_EQ(parse_message(wire::seal("assign 5")).kind, MsgKind::Malformed);
  EXPECT_EQ(parse_message(wire::seal("assign 5 0")).kind,
            MsgKind::Malformed);  // zero-count assignment is meaningless
  EXPECT_EQ(parse_message(wire::seal("hello 1 nothex 10 2")).kind,
            MsgKind::Malformed);
  EXPECT_EQ(parse_message(wire::seal("hello 1 0 10 0")).kind,
            MsgKind::Malformed);  // zero block size

  // A sealed line whose checksum fails after a single bit flip.
  std::string line = encode_assign(24, 8);
  line[8] ^= 0x1;
  EXPECT_EQ(parse_message(line).kind, MsgKind::Malformed);

  // A block line with a good seal but torn content (truncated before
  // sealing would fail the count check).
  SweepBlock rec = sample_block();
  rec.cases.pop_back();  // count now disagrees with the recorded 3
  std::string content;
  ASSERT_TRUE(wire::unseal(wire::serialize_block(sample_block()), content));
  const std::string torn = wire::seal(content.substr(0, content.size() - 20));
  EXPECT_EQ(parse_message(torn).kind, MsgKind::Malformed);
}

}  // namespace
}  // namespace greenhpc::core
