#include "core/chaos.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/sweep.hpp"
#include "sched/fcfs.hpp"
#include "util/fault_injector.hpp"

namespace greenhpc::core {
namespace {

/// Micro-grid for in-process poison runs: 1 cell x 2 replicas = 2 cases.
SweepGrid tiny_grid() {
  SweepGrid grid;
  grid.base.cluster.nodes = 16;
  grid.base.cluster.tick = minutes(5.0);
  grid.base.region = carbon::Region::Germany;
  grid.base.trace_span = days(1.0);
  grid.base.trace_step = minutes(30.0);
  grid.base.workload.job_count = 8;
  grid.base.workload.span = hours(6.0);
  grid.base.workload.max_job_nodes = 8;
  grid.base.seed = 41;
  grid.seed_replicas = 2;
  grid.policies.push_back(
      {"fcfs", [] { return std::make_unique<sched::FcfsScheduler>(); }});
  return grid;
}

std::string encode_plan(const ChaosSchedule& plan) {
  std::string text = util::FaultInjector::encode(plan.coordinator_faults);
  for (const auto& w : plan.worker_faults) {
    text += "|" + util::FaultInjector::encode(w);
  }
  return text;
}

TEST(ChaosSchedule, DeriveIsDeterministicSpecForSpec) {
  const auto& sites = chaos_site_catalogue();
  for (int s = 0; s < 24; ++s) {
    const ChaosSchedule a = ChaosSchedule::derive(99, s, sites, 3, 12, 6, 4000);
    const ChaosSchedule b = ChaosSchedule::derive(99, s, sites, 3, 12, 6, 4000);
    EXPECT_EQ(a.has_poison, b.has_poison) << s;
    EXPECT_EQ(a.poison_flat, b.poison_flat) << s;
    EXPECT_EQ(a.has_restart, b.has_restart) << s;
    EXPECT_EQ(encode_plan(a), encode_plan(b)) << s;
    if (a.has_poison) {
      EXPECT_LT(a.poison_flat, 12u) << s;
    }
    ASSERT_EQ(a.worker_faults.size(), 3u);
  }
}

TEST(ChaosSchedule, DifferentSeedsOrIndicesGiveDifferentPlans) {
  const auto& sites = chaos_site_catalogue();
  // Across enough schedules at least one pair must differ; all-identical
  // plans would mean the stream key is being ignored.
  std::set<std::string> plans;
  for (int s = 0; s < 12; ++s) {
    plans.insert(encode_plan(ChaosSchedule::derive(7, s, sites, 3, 12, 6, 4000)));
  }
  EXPECT_GT(plans.size(), 1u);
  const ChaosSchedule seed_a = ChaosSchedule::derive(1, 0, sites, 3, 12, 6, 4000);
  const ChaosSchedule seed_b = ChaosSchedule::derive(2, 0, sites, 3, 12, 6, 4000);
  EXPECT_NE(encode_plan(seed_a), encode_plan(seed_b));
}

TEST(ChaosSchedule, RespawnIncarnationsGetOnlyThePoisonSpec) {
  const auto& sites = chaos_site_catalogue();
  bool saw_poison = false;
  bool saw_clean = false;
  for (int s = 0; s < 40 && !(saw_poison && saw_clean); ++s) {
    const ChaosSchedule plan = ChaosSchedule::derive(5, s, sites, 3, 12, 6, 4000);
    for (int w = 0; w < 3; ++w) {
      const auto respawn = plan.worker_specs(w, /*incarnation=*/1);
      if (plan.has_poison) {
        saw_poison = true;
        ASSERT_EQ(respawn.size(), 1u);
        EXPECT_EQ(respawn[0].site, "case.poison");
        EXPECT_EQ(respawn[0].at, plan.poison_flat);
      } else {
        saw_clean = true;
        EXPECT_TRUE(respawn.empty());
      }
      // Incarnation 0 always carries the full plan.
      EXPECT_EQ(util::FaultInjector::encode(plan.worker_specs(w, 0)),
                util::FaultInjector::encode(plan.worker_faults[w]));
    }
  }
  EXPECT_TRUE(saw_poison) << "no poisoned schedule in 40 draws";
  EXPECT_TRUE(saw_clean) << "no clean schedule in 40 draws";
}

TEST(ChaosSchedule, ResumeCoordinatorFaultsDropTheFoldFault) {
  const auto& sites = chaos_site_catalogue();
  bool saw_restart = false;
  for (int s = 0; s < 60 && !saw_restart; ++s) {
    const ChaosSchedule plan = ChaosSchedule::derive(11, s, sites, 3, 12, 6, 4000);
    if (!plan.has_restart) continue;
    saw_restart = true;
    const auto resume = plan.resume_coordinator_faults();
    for (const auto& spec : resume) {
      EXPECT_NE(spec.site, "coord.fold");
    }
    // Everything else (the poison spec) survives the restart.
    EXPECT_EQ(resume.size(), plan.coordinator_faults.size() - 1);
  }
  EXPECT_TRUE(saw_restart) << "no restart schedule in 60 draws";
}

TEST(ChaosSchedule, SiteFilterRestrictsEverySpecToTheSubset) {
  const std::vector<std::string> only = {"worker.heartbeat"};
  for (int s = 0; s < 24; ++s) {
    const ChaosSchedule plan = ChaosSchedule::derive(3, s, only, 3, 12, 6, 4000);
    EXPECT_FALSE(plan.has_poison) << s;
    EXPECT_FALSE(plan.has_restart) << s;
    EXPECT_TRUE(plan.coordinator_faults.empty()) << s;
    for (const auto& w : plan.worker_faults) {
      for (const auto& spec : w) {
        EXPECT_EQ(spec.site, "worker.heartbeat") << s;
      }
    }
  }
}

TEST(ChaosSchedule, GeneratorOnlyEmitsCataloguedSites) {
  const auto& sites = chaos_site_catalogue();
  const std::set<std::string> known(sites.begin(), sites.end());
  for (int s = 0; s < 40; ++s) {
    const ChaosSchedule plan = ChaosSchedule::derive(13, s, sites, 4, 12, 6, 4000);
    for (const auto& spec : plan.coordinator_faults) {
      EXPECT_TRUE(known.count(spec.site)) << spec.site;
    }
    for (const auto& w : plan.worker_faults) {
      for (const auto& spec : w) {
        EXPECT_TRUE(known.count(spec.site)) << spec.site;
      }
    }
  }
}

TEST(Chaos, InProcessPoisonIsQuarantinedNotFatal) {
  const SweepGrid grid = tiny_grid();
  SweepEngine::Options eopts;
  eopts.block = 1;
  eopts.case_retries = 0;
  const SweepEngine engine(eopts);

  const SweepResult clean = engine.run(grid);
  ASSERT_EQ(clean.cases, 2u);
  ASSERT_TRUE(clean.failed_cases.empty());

  // Poison flat case 1, non-lethal (this is the coordinator-side
  // degradation path: the injected kill degrades to a quarantinable
  // throw because lethal() is unset in-process).
  util::FaultInjector::global().arm(
      {{"case.poison", 1, 1, util::FaultAction::Kill, 0}});
  const SweepResult poisoned = engine.run(grid);
  util::FaultInjector::global().disarm();

  EXPECT_EQ(poisoned.cases, 2u);
  ASSERT_EQ(poisoned.failed_cases.size(), 1u);
  EXPECT_EQ(poisoned.failed_cases[0].flat, 1u);
  EXPECT_NE(poisoned.failed_cases[0].error.find("injected poison"),
            std::string::npos);
  // The digest folds surviving cases only, so it must differ from clean.
  EXPECT_NE(poisoned.digest, clean.digest);

  // Disarmed, the engine is back to the clean bit-identical run.
  const SweepResult again = engine.run(grid);
  EXPECT_EQ(again.digest, clean.digest);
  EXPECT_TRUE(again.failed_cases.empty());
}

TEST(Chaos, SiteCatalogueNamesTheWholeFaultSurface) {
  const auto& sites = chaos_site_catalogue();
  for (const char* site :
       {"worker.start", "worker.heartbeat", "worker.block", "worker.report",
        "journal.append", "case.poison", "coord.fold"}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), site), sites.end()) << site;
  }
  EXPECT_EQ(sites.size(), 7u);
}

}  // namespace
}  // namespace greenhpc::core
