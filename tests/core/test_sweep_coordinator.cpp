#include "core/sweep_coordinator.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/sweep_journal.hpp"
#include "sched/easy_backfill.hpp"
#include "sched/fcfs.hpp"
#include "util/error.hpp"

namespace greenhpc::core {
namespace {

SweepGrid small_grid() {
  SweepGrid grid;
  grid.base.cluster.nodes = 16;
  grid.base.cluster.tick = minutes(5.0);
  grid.base.region = carbon::Region::Germany;
  grid.base.trace_span = days(2.0);
  grid.base.trace_step = minutes(30.0);
  grid.base.workload.job_count = 12;
  grid.base.workload.span = hours(12.0);
  grid.base.workload.max_job_nodes = 8;
  grid.base.seed = 77;
  grid.regions = {carbon::Region::Germany, carbon::Region::France};
  grid.cluster_nodes = {16, 32};
  grid.seed_replicas = 3;
  grid.policies.push_back(
      {"fcfs", [] { return std::make_unique<sched::FcfsScheduler>(); }});
  grid.policies.push_back(
      {"easy", [] { return std::make_unique<sched::EasyBackfillScheduler>(); }});
  return grid;
}

void expect_equal_results(const SweepResult& a, const SweepResult& b) {
  EXPECT_EQ(a.digest, b.digest);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t c = 0; c < a.cells.size(); ++c) {
    EXPECT_EQ(a.cells[c].carbon_t.count(), b.cells[c].carbon_t.count()) << c;
    EXPECT_EQ(a.cells[c].carbon_t.mean(), b.cells[c].carbon_t.mean()) << c;
    EXPECT_EQ(a.cells[c].wait_h.sample_stddev(), b.cells[c].wait_h.sample_stddev())
        << c;
  }
  ASSERT_EQ(a.failed_cases.size(), b.failed_cases.size());
  for (std::size_t i = 0; i < a.failed_cases.size(); ++i) {
    EXPECT_EQ(a.failed_cases[i].flat, b.failed_cases[i].flat);
    EXPECT_EQ(a.failed_cases[i].where, b.failed_cases[i].where);
    EXPECT_EQ(a.failed_cases[i].error, b.failed_cases[i].error);
  }
}

/// A synthetic but internally-consistent block record: metrics derived
/// from the flat case id, block-local digest re-folded from the cases.
SweepBlock make_rec(std::size_t cases_total, std::size_t block, std::size_t start) {
  SweepBlock rec;
  rec.start = start;
  const std::size_t count = std::min(block, cases_total - start);
  rec.cases.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    rec.cases[i].ok = true;
    rec.cases[i].metrics.total_carbon_t = static_cast<double>(start + i) * 0.5;
    rec.cases[i].metrics.utilization = 0.75;
  }
  rec.digest_after = sweep_block_digest(rec);
  return rec;
}

// --- BlockLedger ----------------------------------------------------------

TEST(BlockLedger, LeasesLowestPendingFirstUntilExhausted) {
  BlockLedger ledger(10, 4);  // blocks: [0,4), [4,8), [8,10)
  EXPECT_EQ(ledger.pending(), 3u);
  BlockLedger::Lease ls;
  ASSERT_TRUE(ledger.lease(7, 0.0, ls));
  EXPECT_EQ(ls.start, 0u);
  EXPECT_EQ(ls.count, 4u);
  EXPECT_FALSE(ls.probe);
  ASSERT_TRUE(ledger.lease(8, 0.0, ls));
  EXPECT_EQ(ls.start, 4u);
  ASSERT_TRUE(ledger.lease(7, 0.0, ls));
  EXPECT_EQ(ls.start, 8u);
  EXPECT_EQ(ls.count, 2u);  // tail block
  EXPECT_FALSE(ledger.lease(9, 0.0, ls));
  EXPECT_EQ(ledger.pending(), 0u);
  EXPECT_EQ(ledger.leased(), 3u);
  EXPECT_FALSE(ledger.all_folded());
}

TEST(BlockLedger, OutOfOrderDeliveryFoldsInFlatCaseOrder) {
  BlockLedger ledger(10, 4);
  BlockLedger::Lease ls;
  ASSERT_TRUE(ledger.lease(1, 0.0, ls));
  ASSERT_TRUE(ledger.lease(2, 0.0, ls));
  ASSERT_TRUE(ledger.lease(3, 0.0, ls));

  SweepBlock out;
  EXPECT_EQ(ledger.deliver(make_rec(10, 4, 8)), BlockLedger::Deliver::Accepted);
  EXPECT_FALSE(ledger.next_to_fold(out));  // block 0 still outstanding
  EXPECT_EQ(ledger.deliver(make_rec(10, 4, 0)), BlockLedger::Deliver::Accepted);
  ASSERT_TRUE(ledger.next_to_fold(out));
  EXPECT_EQ(out.start, 0u);
  EXPECT_FALSE(ledger.next_to_fold(out));  // block 4 gates the frontier
  EXPECT_EQ(ledger.deliver(make_rec(10, 4, 4)), BlockLedger::Deliver::Accepted);
  ASSERT_TRUE(ledger.next_to_fold(out));
  EXPECT_EQ(out.start, 4u);
  ASSERT_TRUE(ledger.next_to_fold(out));
  EXPECT_EQ(out.start, 8u);
  EXPECT_EQ(out.cases.size(), 2u);
  EXPECT_TRUE(ledger.all_folded());
  EXPECT_FALSE(ledger.next_to_fold(out));
}

TEST(BlockLedger, OrphanedBlocksBackOffExponentiallyUpToTheCap) {
  BlockLedger::Options opts;
  opts.backoff_base_s = 1.0;
  opts.backoff_cap_s = 4.0;
  BlockLedger ledger(2, 2, opts);  // a single block
  BlockLedger::Lease ls;

  // Orphaning k (0-based) parks the block for base * 2^k, capped: 1, 2,
  // 4, 4... seconds on this schedule.
  const double expected_backoff[] = {1.0, 2.0, 4.0, 4.0};
  double now = 100.0;
  for (const double backoff : expected_backoff) {
    ASSERT_TRUE(ledger.lease(0, now, ls));
    EXPECT_EQ(ledger.orphan_worker(0, now), 1u);
    EXPECT_DOUBLE_EQ(ledger.next_ready_s(), now + backoff);
    EXPECT_FALSE(ledger.lease(0, now + backoff * 0.5, ls))
        << "leasable before its backoff elapsed";
    now += backoff;
  }
  ASSERT_TRUE(ledger.lease(0, now, ls));
  EXPECT_EQ(ls.start, 0u);
  EXPECT_EQ(ledger.orphan_worker(1, now), 0u);  // worker 1 holds nothing
}

TEST(BlockLedger, OrphanReturnsEveryBlockOfTheDeadWorkerOnly) {
  BlockLedger ledger(12, 4);
  BlockLedger::Lease ls;
  ASSERT_TRUE(ledger.lease(5, 0.0, ls));  // block 0
  ASSERT_TRUE(ledger.lease(6, 0.0, ls));  // block 4
  ASSERT_TRUE(ledger.lease(5, 0.0, ls));  // block 8
  EXPECT_EQ(ledger.orphan_worker(5, 1.0), 2u);
  EXPECT_EQ(ledger.pending(), 2u);
  EXPECT_EQ(ledger.leased(), 1u);
}

TEST(BlockLedger, DuplicateDeliveryIsCountedConflictThrows) {
  BlockLedger ledger(4, 2);
  const SweepBlock rec = make_rec(4, 2, 0);
  EXPECT_EQ(ledger.deliver(rec), BlockLedger::Deliver::Accepted);
  EXPECT_EQ(ledger.deliver(rec), BlockLedger::Deliver::Duplicate);
  EXPECT_EQ(ledger.duplicates(), 1u);

  // Same block, different bits: a consistently-sealed record whose digest
  // re-folds — but disagrees with what was already accepted. That is
  // nondeterminism, not duplicate delivery.
  SweepBlock conflicting = make_rec(4, 2, 0);
  conflicting.cases[0].metrics.total_carbon_t += 1.0;
  conflicting.digest_after = sweep_block_digest(conflicting);
  EXPECT_THROW((void)ledger.deliver(conflicting), InvalidArgument);

  // Duplicates of a FOLDED block are still recognised.
  SweepBlock out;
  ASSERT_TRUE(ledger.next_to_fold(out));
  EXPECT_EQ(ledger.deliver(rec), BlockLedger::Deliver::Duplicate);
  EXPECT_EQ(ledger.duplicates(), 2u);
}

TEST(BlockLedger, DeliverRejectsStructurallyWrongRecords) {
  BlockLedger ledger(10, 4);
  SweepBlock misaligned = make_rec(10, 4, 4);
  misaligned.start = 2;
  EXPECT_THROW((void)ledger.deliver(misaligned), InvalidArgument);

  SweepBlock beyond = make_rec(10, 4, 8);
  beyond.start = 12;
  EXPECT_THROW((void)ledger.deliver(beyond), InvalidArgument);

  SweepBlock short_rec = make_rec(10, 4, 0);
  short_rec.cases.pop_back();
  short_rec.digest_after = sweep_block_digest(short_rec);
  EXPECT_THROW((void)ledger.deliver(short_rec), InvalidArgument);

  SweepBlock bad_digest = make_rec(10, 4, 0);
  bad_digest.digest_after ^= 1;
  EXPECT_THROW((void)ledger.deliver(bad_digest), InvalidArgument);
}

TEST(BlockLedger, NextReadyTracksPendingBackoffsOnly) {
  BlockLedger ledger(4, 2);
  EXPECT_DOUBLE_EQ(ledger.next_ready_s(), 0.0);  // fresh blocks: ready now
  BlockLedger::Lease ls;
  ASSERT_TRUE(ledger.lease(0, 0.0, ls));
  ASSERT_TRUE(ledger.lease(0, 0.0, ls));
  EXPECT_EQ(ledger.next_ready_s(), std::numeric_limits<double>::infinity());
  (void)ledger.orphan_worker(0, 10.0);
  EXPECT_LT(ledger.next_ready_s(), std::numeric_limits<double>::infinity());
}

/// A 1-case probe record for flat case `flat` (the shape a worker reports
/// back for a probe assignment).
SweepBlock make_probe_rec(std::size_t flat, bool ok = true) {
  SweepBlock rec;
  rec.start = flat;
  rec.cases.resize(1);
  rec.cases[0].ok = ok;
  rec.cases[0].metrics.total_carbon_t = static_cast<double>(flat) * 0.5;
  rec.cases[0].metrics.utilization = 0.75;
  rec.digest_after = sweep_block_digest(rec);
  return rec;
}

TEST(BlockLedger, SuspectBlockIsProbedAndThePoisonedCaseQuarantined) {
  BlockLedger::Options opts;
  opts.backoff_base_s = 1.0;
  opts.backoff_cap_s = 1.0;
  opts.suspect_after = 2;
  opts.probe_case_deaths = 2;
  BlockLedger ledger(4, 2, opts);  // blocks [0,2) and [2,4)
  BlockLedger::Lease ls;
  double now = 0.0;

  // Two whole-block orphanings turn block 0 suspect.
  for (int k = 0; k < 2; ++k) {
    ASSERT_TRUE(ledger.lease(1, now, ls));
    EXPECT_EQ(ls.start, 0u);
    EXPECT_FALSE(ls.probe);
    EXPECT_EQ(ledger.orphan_worker(1, now), 1u);
    now += 10.0;
  }
  EXPECT_EQ(ledger.suspects(), 1u);

  // Further leases of block 0 are single-case probes (one in flight);
  // the healthy block still leases whole alongside.
  ASSERT_TRUE(ledger.lease(1, now, ls));
  ASSERT_TRUE(ls.probe);
  EXPECT_EQ(ls.start, 0u);
  EXPECT_EQ(ls.count, 1u);
  ASSERT_TRUE(ledger.lease(2, now, ls));
  EXPECT_FALSE(ls.probe);
  EXPECT_EQ(ls.start, 2u);

  // Probe death #1 accuses case 0; death #2 quarantines it.
  EXPECT_EQ(ledger.orphan_worker(1, now), 1u);
  now += 10.0;
  ASSERT_TRUE(ledger.lease(3, now, ls));
  ASSERT_TRUE(ls.probe);
  EXPECT_EQ(ls.start, 0u);
  EXPECT_EQ(ledger.orphan_worker(3, now), 1u);
  EXPECT_EQ(ledger.probe_quarantined(), 1u);
  now += 10.0;

  // The surviving case is probed and pinned by a delivered record, which
  // completes the block: it folds as a synthesized record with the
  // poison quarantined and the survivor's exact metric bits.
  ASSERT_TRUE(ledger.lease(4, now, ls));
  ASSERT_TRUE(ls.probe);
  EXPECT_EQ(ls.start, 1u);
  EXPECT_EQ(ledger.deliver(make_probe_rec(1)), BlockLedger::Deliver::Accepted);

  SweepBlock out;
  ASSERT_TRUE(ledger.next_to_fold(out));
  EXPECT_EQ(out.start, 0u);
  ASSERT_EQ(out.cases.size(), 2u);
  EXPECT_FALSE(out.cases[0].ok);
  EXPECT_FALSE(out.cases[0].error.empty());
  EXPECT_TRUE(out.cases[1].ok);
  EXPECT_EQ(out.cases[1].metrics.total_carbon_t, 0.5);
  EXPECT_GE(ledger.probes_launched(), 3u);

  // Duplicate probe results for a pinned case are counted, not refolded.
  EXPECT_EQ(ledger.deliver(make_probe_rec(1)), BlockLedger::Deliver::Duplicate);
}

TEST(BlockLedger, FalsePositiveSuspectSynthesizesWithoutQuarantine) {
  // A block whose workers died for unrelated reasons (OOM, chaos kills)
  // goes suspect, but every probe completes: the synthesized block must
  // be indistinguishable from an honest whole-block delivery.
  BlockLedger::Options opts;
  opts.backoff_base_s = 1.0;
  opts.backoff_cap_s = 1.0;
  opts.suspect_after = 1;
  BlockLedger ledger(2, 2, opts);  // a single block
  BlockLedger::Lease ls;
  double now = 0.0;

  ASSERT_TRUE(ledger.lease(0, now, ls));
  (void)ledger.orphan_worker(0, now);
  now += 10.0;
  EXPECT_EQ(ledger.suspects(), 1u);

  for (std::size_t flat = 0; flat < 2; ++flat) {
    ASSERT_TRUE(ledger.lease(0, now, ls));
    ASSERT_TRUE(ls.probe);
    EXPECT_EQ(ls.start, flat);
    EXPECT_EQ(ledger.deliver(make_probe_rec(flat)),
              BlockLedger::Deliver::Accepted);
  }

  SweepBlock out;
  ASSERT_TRUE(ledger.next_to_fold(out));
  EXPECT_EQ(out.start, 0u);
  ASSERT_EQ(out.cases.size(), 2u);
  EXPECT_TRUE(out.cases[0].ok);
  EXPECT_TRUE(out.cases[1].ok);
  EXPECT_EQ(out.digest_after, sweep_block_digest(out));
  EXPECT_EQ(ledger.probe_quarantined(), 0u);
  EXPECT_TRUE(ledger.all_folded());
}

TEST(BlockLedger, ProbeRecordForANonSuspectBlockIsRejected) {
  BlockLedger::Options opts;
  opts.suspect_after = 2;
  BlockLedger ledger(4, 2, opts);
  // A 1-case record for a block nobody declared suspect is structurally
  // wrong input, not a probe result.
  EXPECT_THROW((void)ledger.deliver(make_probe_rec(1)), InvalidArgument);
}

// --- SweepCoordinator -----------------------------------------------------

TEST(SweepCoordinator, InProcessPathMatchesTheEngineBitForBit) {
  const SweepGrid grid = small_grid();
  const SweepResult reference = SweepEngine().run(grid);

  SweepCoordinator::Options opts;
  opts.workers = 0;
  opts.block = 5;
  SweepCoordinator coord(std::move(opts));
  const SweepResult result = coord.run(grid);
  expect_equal_results(reference, result);
  EXPECT_FALSE(coord.stats().degraded_in_process);
  EXPECT_EQ(coord.stats().worker_deaths, 0u);
}

TEST(SweepCoordinator, QuarantinedCasesAreIdenticalToTheEngines) {
  // The distributed path must reproduce not just the digest but the
  // QUARANTINE evidence: same failed cases, same coordinates, same error
  // text, regardless of which execution path ran the block.
  SweepGrid grid = small_grid();
  grid.policies.push_back(
      {"broken", []() -> std::unique_ptr<hpcsim::SchedulingPolicy> {
         throw std::runtime_error("deterministically down");
       }});
  SweepEngine::Options eopts;
  eopts.case_retries = 0;
  eopts.retry_backoff_base_s = 0.0;
  const SweepResult reference = SweepEngine(std::move(eopts)).run(grid);
  ASSERT_FALSE(reference.failed_cases.empty());

  SweepCoordinator::Options opts;
  opts.workers = 0;
  opts.block = 4;
  opts.case_opts.case_retries = 0;
  opts.case_opts.retry_backoff_base_s = 0.0;
  const SweepResult result = SweepCoordinator(std::move(opts)).run(grid);
  expect_equal_results(reference, result);
}

TEST(SweepCoordinator, SilentWorkersAreDeclaredDeadAndTheSweepDegrades) {
  // Workers that never speak the protocol (here: /bin/sleep) must be
  // caught by the hello deadline; with every worker dead the coordinator
  // degrades to in-process execution and still produces the exact result.
  const SweepGrid grid = small_grid();
  const SweepResult reference = SweepEngine().run(grid);

  SweepCoordinator::Options opts;
  opts.workers = 2;
  // Alive, silent, and immune to the trailing --shard-path/--block flags
  // the coordinator appends (sh -c consumes them as $0/$1...).
  opts.worker_argv = {"/bin/sh", "-c", "sleep 60"};
  opts.block = 6;
  opts.hello_timeout_s = 0.2;
  opts.heartbeat_timeout_s = 0.1;
  SweepCoordinator coord(std::move(opts));
  const SweepResult result = coord.run(grid);

  expect_equal_results(reference, result);
  const SweepCoordinator::Stats& stats = coord.stats();
  EXPECT_EQ(stats.worker_deaths, 2u);
  EXPECT_TRUE(stats.degraded_in_process);
  ASSERT_EQ(stats.workers.size(), 2u);
  EXPECT_TRUE(stats.workers[0].died);
  EXPECT_TRUE(stats.workers[1].died);
  EXPECT_EQ(stats.workers[0].blocks + stats.workers[1].blocks, 0u);
}

TEST(SweepCoordinator, InstantlyExitingWorkersDegradeViaEof) {
  const SweepGrid grid = small_grid();
  const SweepResult reference = SweepEngine().run(grid);

  SweepCoordinator::Options opts;
  opts.workers = 3;
  opts.worker_argv = {"/bin/true"};
  opts.block = 6;
  opts.hello_timeout_s = 5.0;  // EOF must beat this, not the deadline
  SweepCoordinator coord(std::move(opts));
  const SweepResult result = coord.run(grid);

  expect_equal_results(reference, result);
  EXPECT_EQ(coord.stats().worker_deaths, 3u);
  EXPECT_TRUE(coord.stats().degraded_in_process);
}

TEST(SweepCoordinator, UnspawnableWorkerBinaryIsADeathNotAFailure) {
  const SweepGrid grid = small_grid();
  const SweepResult reference = SweepEngine().run(grid);

  SweepCoordinator::Options opts;
  opts.workers = 2;
  opts.worker_argv = {"/no/such/binary/greenhpc-worker"};
  opts.block = 8;
  opts.hello_timeout_s = 0.5;
  SweepCoordinator coord(std::move(opts));
  const SweepResult result = coord.run(grid);

  expect_equal_results(reference, result);
  EXPECT_EQ(coord.stats().worker_deaths, 2u);
  EXPECT_TRUE(coord.stats().degraded_in_process);
}

TEST(SweepCoordinator, MissingWorkerArgvIsInvalid) {
  SweepCoordinator::Options opts;
  opts.workers = 2;
  EXPECT_THROW((void)SweepCoordinator(std::move(opts)).run(small_grid()),
               InvalidArgument);
}

TEST(SweepCoordinator, ResumesFromShardJournalsWithoutResimulating) {
  const SweepGrid grid = small_grid();  // 24 cases
  const SweepResult reference = SweepEngine().run(grid);
  const std::size_t block = 6;
  const SweepCaseRunner runner(grid);

  const std::string dir =
      ::testing::TempDir() + "greenhpc_coord_resume_shards";
  std::filesystem::remove_all(dir);  // shards from earlier runs
  // Simulate a previous coordinator generation: two workers journaled
  // blocks 0 and 12 (out of order w.r.t. each other) before dying.
  for (const std::size_t start : {std::size_t{12}, std::size_t{0}}) {
    SweepJournal shard = SweepJournal::create_shard(
        dir, SweepJournal::shard_file_name(0, "w" + std::to_string(start)),
        grid.config_digest(), grid.case_count(), block);
    SweepBlock rec;
    rec.start = start;
    rec.cases.resize(block);
    for (std::size_t i = 0; i < block; ++i) {
      rec.cases[i] = runner.run_case(start + i);
    }
    rec.digest_after = sweep_block_digest(rec);
    shard.append(rec);
  }

  SweepCoordinator::Options opts;
  opts.workers = 0;
  opts.block = 99;  // shards recorded 6; that must win
  opts.journal_dir = dir;
  opts.resume = true;
  SweepCoordinator coord(std::move(opts));
  const SweepResult result = coord.run(grid);

  expect_equal_results(reference, result);
  EXPECT_EQ(result.replayed_cases, 2 * block);
  EXPECT_EQ(coord.stats().replayed_blocks, 2u);
  EXPECT_EQ(coord.stats().shard_generation, 1);  // g0 survived; we are g1

  // A SECOND resume sees both the g0 shards and g1's coord shard — the
  // whole sweep is now proven, so nothing is simulated at all.
  SweepCoordinator::Options again;
  again.workers = 0;
  again.journal_dir = dir;
  again.resume = true;
  SweepCoordinator coord2(std::move(again));
  const SweepResult replay = coord2.run(grid);
  expect_equal_results(reference, replay);
  EXPECT_EQ(replay.replayed_cases, grid.case_count());
  EXPECT_EQ(coord2.stats().shard_generation, 2);
}

}  // namespace
}  // namespace greenhpc::core
