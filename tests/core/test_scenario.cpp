#include "core/scenario.hpp"

#include <gtest/gtest.h>

#include "sched/easy_backfill.hpp"
#include "sched/fcfs.hpp"
#include "util/error.hpp"

namespace greenhpc::core {
namespace {

ScenarioConfig small_scenario() {
  ScenarioConfig cfg;
  cfg.cluster.nodes = 32;
  cfg.cluster.tick = minutes(2.0);
  cfg.region = carbon::Region::Germany;
  cfg.trace_span = days(4.0);
  cfg.workload.job_count = 60;
  cfg.workload.span = days(2.0);
  cfg.workload.max_job_nodes = 16;
  cfg.seed = 11;
  return cfg;
}

TEST(Scenario, BuildsSharedInputs) {
  ScenarioRunner runner(small_scenario());
  EXPECT_EQ(runner.jobs().size(), 60u);
  EXPECT_GT(runner.trace().size(), 0u);
  EXPECT_GT(runner.green_threshold(), 0.0);
}

TEST(Scenario, RunProducesDerivedMetrics) {
  ScenarioRunner runner(small_scenario());
  const auto outcome =
      runner.run("easy", [] { return std::make_unique<sched::EasyBackfillScheduler>(); });
  EXPECT_EQ(outcome.scheduler, "easy");
  EXPECT_EQ(outcome.power_policy, "unconstrained");
  EXPECT_GT(outcome.completed, 50);
  EXPECT_GT(outcome.total_carbon_t, 0.0);
  EXPECT_GT(outcome.total_energy_mwh, 0.0);
  EXPECT_GT(outcome.utilization, 0.0);
  EXPECT_LE(outcome.utilization, 1.0);
  EXPECT_GE(outcome.green_energy_share, 0.0);
  EXPECT_LE(outcome.green_energy_share, 1.0);
}

TEST(Scenario, SameFactorySameResult) {
  ScenarioRunner runner(small_scenario());
  const auto a =
      runner.run("fcfs", [] { return std::make_unique<sched::FcfsScheduler>(); });
  const auto b =
      runner.run("fcfs", [] { return std::make_unique<sched::FcfsScheduler>(); });
  EXPECT_DOUBLE_EQ(a.total_carbon_t, b.total_carbon_t);
  EXPECT_DOUBLE_EQ(a.mean_wait_h, b.mean_wait_h);
}

TEST(Scenario, DifferentSeedsDifferentWorkload) {
  auto cfg = small_scenario();
  ScenarioRunner a(cfg);
  cfg.seed = 99;
  ScenarioRunner b(cfg);
  bool differs = false;
  for (std::size_t i = 0; i < a.jobs().size(); ++i) {
    if (a.jobs()[i].submit != b.jobs()[i].submit) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Scenario, TraceMustCoverWorkload) {
  auto cfg = small_scenario();
  cfg.trace_span = days(1.0);  // < workload span of 2 days
  EXPECT_THROW(ScenarioRunner{cfg}, greenhpc::InvalidArgument);
}

TEST(Scenario, EmptyLabelUsesSchedulerName) {
  ScenarioRunner runner(small_scenario());
  const auto outcome =
      runner.run("", [] { return std::make_unique<sched::FcfsScheduler>(); });
  EXPECT_EQ(outcome.scheduler, "fcfs");
}

}  // namespace
}  // namespace greenhpc::core
