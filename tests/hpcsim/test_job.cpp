#include "hpcsim/job.hpp"

#include <gtest/gtest.h>

#include "testing/helpers.hpp"
#include "util/error.hpp"

namespace greenhpc::hpcsim {
namespace {

using greenhpc::testing::rigid_job;

TEST(JobSpec, ValidRigidJobPasses) {
  const JobSpec j = rigid_job(1, seconds(0.0), 4, hours(2.0));
  EXPECT_NO_THROW(j.validate());
}

TEST(JobSpec, RigidRangeMustMatchRequested) {
  JobSpec j = rigid_job(1, seconds(0.0), 4, hours(2.0));
  j.min_nodes = 2;
  EXPECT_THROW(j.validate(), greenhpc::InvalidArgument);
}

TEST(JobSpec, RequestedMustCoverUsed) {
  JobSpec j = rigid_job(1, seconds(0.0), 4, hours(2.0));
  j.nodes_used = 8;
  EXPECT_THROW(j.validate(), greenhpc::InvalidArgument);
}

TEST(JobSpec, OverAllocationIsLegal) {
  JobSpec j = rigid_job(1, seconds(0.0), 8, hours(2.0));
  j.nodes_used = 4;  // requested 8, uses 4
  EXPECT_NO_THROW(j.validate());
}

TEST(JobSpec, WalltimeMustCoverRuntime) {
  JobSpec j = rigid_job(1, seconds(0.0), 4, hours(2.0));
  j.walltime = hours(1.0);
  EXPECT_THROW(j.validate(), greenhpc::InvalidArgument);
}

TEST(JobSpec, ParameterRanges) {
  JobSpec j = rigid_job(1, seconds(0.0), 4, hours(2.0));
  j.power_alpha = 1.5;
  EXPECT_THROW(j.validate(), greenhpc::InvalidArgument);
  j.power_alpha = 0.4;
  j.scale_gamma = 0.0;
  EXPECT_THROW(j.validate(), greenhpc::InvalidArgument);
  j.scale_gamma = 0.9;
  j.node_power = watts(0.0);
  EXPECT_THROW(j.validate(), greenhpc::InvalidArgument);
  j.node_power = watts(300.0);
  j.runtime = seconds(0.0);
  EXPECT_THROW(j.validate(), greenhpc::InvalidArgument);
}

TEST(JobSpec, MalleableRangeValidation) {
  JobSpec j = rigid_job(1, seconds(0.0), 4, hours(2.0));
  j.kind = JobKind::Malleable;
  j.min_nodes = 2;
  j.max_nodes = 8;
  EXPECT_NO_THROW(j.validate());
  j.min_nodes = 9;
  EXPECT_THROW(j.validate(), greenhpc::InvalidArgument);
}

}  // namespace
}  // namespace greenhpc::hpcsim
