#include "hpcsim/simulator.hpp"

#include <gtest/gtest.h>

#include "testing/helpers.hpp"
#include "util/error.hpp"

namespace greenhpc::hpcsim {
namespace {

using greenhpc::testing::constant_trace;
using greenhpc::testing::GreedyScheduler;
using greenhpc::testing::malleable_job;
using greenhpc::testing::rigid_job;
using greenhpc::testing::small_cluster;
using greenhpc::testing::square_trace;

Simulator::Config sim_config(const ClusterConfig& cluster, util::TimeSeries trace) {
  Simulator::Config cfg;
  cfg.cluster = cluster;
  cfg.carbon_intensity = std::move(trace);
  return cfg;
}

TEST(Simulator, SingleJobRunsToCompletion) {
  const auto cluster = small_cluster(4);
  Simulator sim(sim_config(cluster, constant_trace(200.0, days(1.0))),
                {rigid_job(1, seconds(0.0), 2, hours(1.0))});
  GreedyScheduler sched;
  const auto result = sim.run(sched);
  ASSERT_EQ(result.jobs.size(), 1u);
  const JobRecord& j = result.jobs[0];
  EXPECT_TRUE(j.completed);
  EXPECT_EQ(j.start, seconds(0.0));
  EXPECT_NEAR(j.finish.hours(), 1.0, 0.02);
  EXPECT_EQ(result.completed_jobs, 1);
}

TEST(Simulator, JobEnergyMatchesAnalyticValue) {
  const auto cluster = small_cluster(4);
  Simulator sim(sim_config(cluster, constant_trace(500.0, days(1.0))),
                {rigid_job(1, seconds(0.0), 2, hours(2.0))});
  GreedyScheduler sched;
  const auto result = sim.run(sched);
  // 2 nodes x 400 W x 2 h = 1.6 kWh.
  EXPECT_NEAR(result.jobs[0].energy.kilowatt_hours(), 1.6, 0.01);
  // Carbon: 1.6 kWh * 500 g/kWh = 800 g.
  EXPECT_NEAR(result.jobs[0].carbon.grams(), 800.0, 10.0);
}

TEST(Simulator, IdleNodesDrawIdlePower) {
  const auto cluster = small_cluster(4);
  Simulator sim(sim_config(cluster, constant_trace(100.0, days(1.0))),
                {rigid_job(1, seconds(0.0), 2, hours(1.0))});
  GreedyScheduler sched;
  const auto result = sim.run(sched);
  // 2 idle nodes x 100 W x 1 h = 0.2 kWh idle energy.
  EXPECT_NEAR(result.idle_energy.kilowatt_hours(), 0.2, 0.01);
  // Total = job 0.8 kWh + idle 0.2 kWh.
  EXPECT_NEAR(result.total_energy.kilowatt_hours(), 1.0, 0.02);
}

TEST(Simulator, JobsQueueWhenClusterFull) {
  const auto cluster = small_cluster(4);
  std::vector<JobSpec> jobs = {rigid_job(1, seconds(0.0), 4, hours(1.0)),
                               rigid_job(2, seconds(0.0), 4, hours(1.0))};
  Simulator sim(sim_config(cluster, constant_trace(100.0, days(1.0))), jobs);
  GreedyScheduler sched;
  const auto result = sim.run(sched);
  EXPECT_TRUE(result.jobs[0].completed);
  EXPECT_TRUE(result.jobs[1].completed);
  // Second job must wait for the first to finish.
  EXPECT_GE(result.jobs[1].start.hours(), 0.99);
  EXPECT_NEAR(result.makespan.hours(), 2.0, 0.05);
}

TEST(Simulator, ArrivalTimesRespected) {
  const auto cluster = small_cluster(8);
  Simulator sim(sim_config(cluster, constant_trace(100.0, days(1.0))),
                {rigid_job(1, hours(5.0), 2, hours(1.0))});
  GreedyScheduler sched;
  const auto result = sim.run(sched);
  EXPECT_GE(result.jobs[0].start, hours(5.0));
  EXPECT_LT(result.jobs[0].start, hours(5.0) + minutes(2.0));
}

TEST(Simulator, PowerBudgetCapsSlowJobsDown) {
  const auto cluster = small_cluster(4);
  // One job using all 4 nodes at 400 W; budget forces a 50% cap on the
  // busy draw above baseline.
  class HalfBudget final : public PowerBudgetPolicy {
   public:
    Power system_budget(Duration, double, const ClusterConfig&) override {
      // Busy full draw is 1600 W; grant 800 W (cap = 0.5 exactly, since
      // baseline is zero: all nodes busy).
      return watts(0.5 * 4 * 400.0);
    }
    std::string name() const override { return "half"; }
  };
  JobSpec j = rigid_job(1, seconds(0.0), 4, hours(1.0));
  j.power_alpha = 0.5;
  Simulator sim(sim_config(cluster, constant_trace(100.0, days(2.0))), {j});
  GreedyScheduler sched;
  HalfBudget budget;
  const auto result = sim.run(sched, &budget);
  // Speed = 0.5^0.5 = 0.707 -> runtime = 1/0.707 = 1.414 h.
  EXPECT_NEAR(result.jobs[0].finish.hours(), 1.414, 0.05);
  // Energy: 4 x 400 x 0.5 W for 1.414 h = 1.13 kWh.
  EXPECT_NEAR(result.jobs[0].energy.kilowatt_hours(), 1.131, 0.05);
}

TEST(Simulator, CapFloorViolationIsCounted) {
  const auto cluster = small_cluster(4);  // min_cap_fraction = 0.5
  class TinyBudget final : public PowerBudgetPolicy {
   public:
    Power system_budget(Duration, double, const ClusterConfig&) override {
      return watts(100.0);  // impossible
    }
    std::string name() const override { return "tiny"; }
  };
  Simulator sim(sim_config(cluster, constant_trace(100.0, days(2.0))),
                {rigid_job(1, seconds(0.0), 4, hours(1.0))});
  GreedyScheduler sched;
  TinyBudget budget;
  const auto result = sim.run(sched, &budget);
  EXPECT_GT(result.budget_violations, 0);
  EXPECT_TRUE(result.jobs[0].completed);  // still progresses at floor cap
}

TEST(Simulator, OverAllocatedNodesDrawIdleAndDontSpeedUp) {
  const auto cluster = small_cluster(8);
  JobSpec lean = rigid_job(1, seconds(0.0), 2, hours(1.0));
  JobSpec fat = rigid_job(2, seconds(0.0), 4, hours(1.0));
  fat.nodes_used = 2;  // requests 4, uses 2
  Simulator sim_lean(sim_config(cluster, constant_trace(100.0, days(1.0))), {lean});
  Simulator sim_fat(sim_config(cluster, constant_trace(100.0, days(1.0))), {fat});
  GreedyScheduler s1, s2;
  const auto r_lean = sim_lean.run(s1);
  const auto r_fat = sim_fat.run(s2);
  // Same completion time (extra nodes don't help).
  EXPECT_NEAR(r_lean.jobs[0].finish.hours(), r_fat.jobs[0].finish.hours(), 0.02);
  // Fat job burns extra idle power: 2 * 100 W * 1 h = 0.2 kWh more.
  EXPECT_NEAR(r_fat.jobs[0].energy.kilowatt_hours() -
                  r_lean.jobs[0].energy.kilowatt_hours(),
              0.2, 0.02);
}

TEST(Simulator, MalleableScalingChangesSpeed) {
  const auto cluster = small_cluster(8);
  JobSpec j = malleable_job(1, seconds(0.0), 4, hours(2.0), 8);
  j.scale_gamma = 1.0;  // perfect scaling for a clean check

  // Scheduler that starts the job on 8 nodes (double the natural size).
  class StartBig final : public SchedulingPolicy {
   public:
    void on_tick(SimulationView& view) override {
      const std::vector<JobId> pending = view.pending_jobs();
      for (JobId id : pending) (void)view.start(id, 8);
    }
    std::string name() const override { return "start-big"; }
  };
  Simulator sim(sim_config(cluster, constant_trace(100.0, days(1.0))), {j});
  StartBig sched;
  const auto result = sim.run(sched);
  // Twice the nodes, gamma=1: half the runtime.
  EXPECT_NEAR(result.jobs[0].finish.hours(), 1.0, 0.05);
}

TEST(Simulator, SuspendResumeRoundTrip) {
  const auto cluster = small_cluster(4);
  JobSpec j = rigid_job(1, seconds(0.0), 2, hours(2.0));
  j.checkpointable = true;
  j.checkpoint_overhead = minutes(6.0);

  // Suspend at t=30min, resume at t=90min.
  class SuspendResume final : public SchedulingPolicy {
   public:
    void on_tick(SimulationView& view) override {
      const std::vector<JobId> pending = view.pending_jobs();
      for (JobId id : pending) (void)view.start(id, 2);
      if (view.now() >= minutes(30.0) && view.now() < minutes(31.0)) {
        const std::vector<JobId> running = view.running_jobs();
        for (JobId id : running) (void)view.suspend(id);
      }
      if (view.now() >= minutes(90.0)) {
        const std::vector<JobId> suspended = view.suspended_jobs();
        for (JobId id : suspended) (void)view.resume(id, 2);
      }
    }
    std::string name() const override { return "susres"; }
  };
  Simulator sim(sim_config(cluster, constant_trace(100.0, days(2.0))), {j});
  SuspendResume sched;
  const auto result = sim.run(sched);
  ASSERT_TRUE(result.jobs[0].completed);
  EXPECT_EQ(result.jobs[0].suspend_count, 1);
  // Did 30 min of 120; lost 6 min to checkpoint -> 96 min left after
  // resuming at t=90 -> finish ~ 186 min.
  EXPECT_NEAR(result.jobs[0].finish.minutes(), 186.0, 3.0);
}

TEST(Simulator, SuspendRequiresCheckpointable) {
  const auto cluster = small_cluster(4);
  JobSpec j = rigid_job(1, seconds(0.0), 2, hours(1.0));  // not checkpointable
  class TrySuspend final : public SchedulingPolicy {
   public:
    bool suspend_failed = false;
    void on_tick(SimulationView& view) override {
      const std::vector<JobId> pending = view.pending_jobs();
      for (JobId id : pending) (void)view.start(id, 2);
      const std::vector<JobId> running = view.running_jobs();
      for (JobId id : running) {
        if (!view.suspend(id)) suspend_failed = true;
      }
    }
    std::string name() const override { return "try"; }
  };
  Simulator sim(sim_config(cluster, constant_trace(100.0, days(1.0))), {j});
  TrySuspend sched;
  (void)sim.run(sched);
  EXPECT_TRUE(sched.suspend_failed);
}

TEST(Simulator, SuspendRejectsPendingAndDoubleSuspend) {
  const auto cluster = small_cluster(4);
  JobSpec j = rigid_job(1, seconds(0.0), 2, hours(1.0));
  j.checkpointable = true;
  j.checkpoint_overhead = minutes(2.0);

  class Probe final : public SchedulingPolicy {
   public:
    bool pending_suspend_rejected = false;
    bool first_suspend_ok = false;
    bool double_suspend_rejected = false;
    void on_tick(SimulationView& view) override {
      const std::vector<JobId> pending = view.pending_jobs();
      for (JobId id : pending) {
        // A job that never started has nothing to suspend.
        if (!view.suspend(id)) pending_suspend_rejected = true;
        (void)view.start(id, 2);
      }
      if (view.now() >= minutes(20.0) && !first_suspend_ok) {
        const std::vector<JobId> running = view.running_jobs();
        for (JobId id : running) {
          first_suspend_ok = view.suspend(id);
          if (!view.suspend(id)) double_suspend_rejected = true;
        }
      }
      if (view.now() >= minutes(40.0)) {
        const std::vector<JobId> suspended = view.suspended_jobs();
        for (JobId id : suspended) (void)view.resume(id, 2);
      }
    }
    std::string name() const override { return "probe"; }
  };
  Simulator sim(sim_config(cluster, constant_trace(100.0, days(1.0))), {j});
  Probe sched;
  const auto result = sim.run(sched);
  ASSERT_TRUE(result.jobs[0].completed);
  EXPECT_TRUE(sched.pending_suspend_rejected);
  EXPECT_TRUE(sched.first_suspend_ok);
  EXPECT_TRUE(sched.double_suspend_rejected);
  EXPECT_EQ(result.jobs[0].suspend_count, 1);
}

TEST(Simulator, StartValidationRules) {
  const auto cluster = small_cluster(4);
  JobSpec rigid = rigid_job(1, seconds(0.0), 2, hours(1.0));
  class Probing final : public SchedulingPolicy {
   public:
    bool wrong_size_rejected = false;
    bool too_big_rejected = false;
    void on_tick(SimulationView& view) override {
      const std::vector<JobId> pending = view.pending_jobs();
      for (JobId id : pending) {
        if (!view.start(id, 3)) wrong_size_rejected = true;   // rigid: != requested
        if (!view.start(id, 99)) too_big_rejected = true;     // > cluster
        (void)view.start(id, 2);
      }
    }
    std::string name() const override { return "probing"; }
  };
  Simulator sim(sim_config(cluster, constant_trace(100.0, days(1.0))), {rigid});
  Probing sched;
  const auto result = sim.run(sched);
  EXPECT_TRUE(sched.wrong_size_rejected);
  EXPECT_TRUE(sched.too_big_rejected);
  EXPECT_TRUE(result.jobs[0].completed);
}

TEST(Simulator, ReshapeOnlyForMalleable) {
  const auto cluster = small_cluster(8);
  JobSpec m = malleable_job(1, seconds(0.0), 4, hours(1.0), 8);
  JobSpec r = rigid_job(2, seconds(0.0), 2, hours(1.0));
  class Reshaper final : public SchedulingPolicy {
   public:
    bool rigid_reshape_rejected = false;
    bool malleable_reshaped = false;
    void on_tick(SimulationView& view) override {
      const std::vector<JobId> pending = view.pending_jobs();
      for (JobId id : pending) {
        const auto& spec = view.spec(id);
        (void)view.start(id, spec.kind == JobKind::Rigid ? spec.nodes_requested
                                                         : spec.nodes_used);
      }
      for (JobId id : view.running_jobs()) {
        if (view.spec(id).kind == JobKind::Rigid) {
          if (!view.reshape(id, 4)) rigid_reshape_rejected = true;
        } else if (view.info(id).alloc_nodes == 4) {
          malleable_reshaped = view.reshape(id, 6);
        }
      }
    }
    std::string name() const override { return "reshaper"; }
  };
  Simulator sim(sim_config(cluster, constant_trace(100.0, days(1.0))), {m, r});
  Reshaper sched;
  (void)sim.run(sched);
  EXPECT_TRUE(sched.rigid_reshape_rejected);
  EXPECT_TRUE(sched.malleable_reshaped);
}

TEST(Simulator, CarbonFollowsIntensityTrace) {
  const auto cluster = small_cluster(2);
  // Square wave: 100 for first 6 h, 300 for next 6 h, etc.
  const auto trace = square_trace(100.0, 300.0, hours(6.0), days(2.0));
  // Job running entirely in the first (green) half-period...
  JobSpec early = rigid_job(1, seconds(0.0), 1, hours(5.0));
  // ...and one starting in the dirty half.
  JobSpec late = rigid_job(2, hours(6.0), 1, hours(5.0));
  Simulator sim(sim_config(cluster, trace), {early, late});
  GreedyScheduler sched;
  const auto result = sim.run(sched);
  // Same energy, 3x the carbon for the late job.
  EXPECT_NEAR(result.jobs[1].carbon.grams() / result.jobs[0].carbon.grams(), 3.0, 0.1);
}

TEST(Simulator, TelemetrySinkReceivesSystemSensors) {
  const auto cluster = small_cluster(4);
  telemetry::SensorStore store;
  auto cfg = sim_config(cluster, constant_trace(250.0, days(1.0)));
  cfg.telemetry = &store;
  Simulator sim(cfg, {rigid_job(1, seconds(0.0), 2, hours(1.0))});
  GreedyScheduler sched;
  const auto result = sim.run(sched);
  ASSERT_NE(store.find("system.power"), nullptr);
  ASSERT_NE(store.find("system.ci"), nullptr);
  // Telemetry energy must agree with the result totals.
  const Energy e = store.energy("system.power", seconds(0.0), result.makespan);
  EXPECT_NEAR(e.kilowatt_hours(), result.total_energy.kilowatt_hours(), 0.05);
}

TEST(Simulator, RunTwiceThrows) {
  const auto cluster = small_cluster(2);
  Simulator sim(sim_config(cluster, constant_trace(100.0, days(1.0))),
                {rigid_job(1, seconds(0.0), 1, hours(1.0))});
  GreedyScheduler sched;
  (void)sim.run(sched);
  EXPECT_THROW((void)sim.run(sched), greenhpc::InvalidArgument);
}

TEST(Simulator, RejectsOversizedJobs) {
  const auto cluster = small_cluster(2);
  EXPECT_THROW(Simulator(sim_config(cluster, constant_trace(100.0, days(1.0))),
                         {rigid_job(1, seconds(0.0), 4, hours(1.0))}),
               greenhpc::InvalidArgument);
}

TEST(Simulator, RejectsDuplicateIds) {
  const auto cluster = small_cluster(4);
  EXPECT_THROW(Simulator(sim_config(cluster, constant_trace(100.0, days(1.0))),
                         {rigid_job(1, seconds(0.0), 1, hours(1.0)),
                          rigid_job(1, seconds(0.0), 1, hours(1.0))}),
               greenhpc::InvalidArgument);
}

TEST(Simulator, MaxTimeStopsLivelockedPolicies) {
  const auto cluster = small_cluster(4);
  class DoNothing final : public SchedulingPolicy {
   public:
    void on_tick(SimulationView&) override {}
    std::string name() const override { return "noop"; }
  };
  auto cfg = sim_config(cluster, constant_trace(100.0, days(1.0)));
  cfg.max_time = days(1.0);
  Simulator sim(cfg, {rigid_job(1, seconds(0.0), 2, hours(1.0))});
  DoNothing sched;
  const auto result = sim.run(sched);
  EXPECT_FALSE(result.jobs[0].completed);
  EXPECT_EQ(result.completed_jobs, 0);
}

TEST(Simulator, DeterministicAcrossRuns) {
  const auto cluster = small_cluster(8);
  std::vector<JobSpec> jobs;
  for (int i = 1; i <= 20; ++i) {
    jobs.push_back(rigid_job(i, minutes(i * 7.0), 1 + i % 4, minutes(30.0 + i)));
  }
  auto run_once = [&] {
    Simulator sim(sim_config(cluster, constant_trace(150.0, days(3.0))), jobs);
    GreedyScheduler sched;
    return sim.run(sched);
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].finish, b.jobs[i].finish);
    EXPECT_DOUBLE_EQ(a.jobs[i].carbon.grams(), b.jobs[i].carbon.grams());
  }
  EXPECT_DOUBLE_EQ(a.total_carbon.grams(), b.total_carbon.grams());
}

}  // namespace
}  // namespace greenhpc::hpcsim
