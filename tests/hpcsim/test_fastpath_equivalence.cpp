// Fast-path / reference-path equivalence property (perf guardrail).
//
// The simulator's hot path (SoA span batch kernel, check-free chunks,
// arrival riding, idle fast-forward, segment-hoisted intensity sampling)
// claims to be bit-identical to the tick-exact reference loop. The golden
// fixture pins four specific runs; this test proves the claim across a
// randomized family of small scenarios: for each sampled (workload,
// scheduler, faults) combination the simulation runs three times — with
// Config::reference_mode forcing the per-tick path, with every fast path
// enabled (in-span completion kernel included), and with
// Config::span_completions off (per-event fencing, the PR 7 behaviour) —
// and the three SimulationResults must match field by field, every
// double compared by bit pattern. The completion-dense "waves" combos
// (hourly arrival quanta, small jobs, short tick) drive thousands of
// finishes through the in-span event tick specifically.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>

#include "carbon/forecast.hpp"
#include "core/scenario.hpp"
#include "hpcsim/simulator.hpp"
#include "resilience/checkpoint_policy.hpp"
#include "sched/carbon_aware.hpp"
#include "sched/decorators.hpp"
#include "sched/easy_backfill.hpp"
#include "sched/fcfs.hpp"

namespace greenhpc {
namespace {

/// Bit-pattern equality: catches last-bit drift that value comparison
/// (or -0.0 == 0.0) would miss.
::testing::AssertionResult same_bits(const char* expr_a, const char* expr_b,
                                     double a, double b) {
  std::uint64_t ba = 0;
  std::uint64_t bb = 0;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  if (ba == bb) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << expr_a << " and " << expr_b << " differ: " << a << " vs " << b
         << " (bits 0x" << std::hex << ba << " vs 0x" << bb << ")";
}
#define EXPECT_SAME_BITS(a, b) EXPECT_PRED_FORMAT2(same_bits, (a), (b))

void expect_same_series(const util::TimeSeries& ref, const util::TimeSeries& fast,
                        const char* what) {
  ASSERT_EQ(ref.size(), fast.size()) << what;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_SAME_BITS(ref.values()[i], fast.values()[i])
        << what << " sample " << i;
    if (::testing::Test::HasFailure()) return;  // one divergence is enough
  }
}

void expect_equivalent(const hpcsim::SimulationResult& ref,
                       const hpcsim::SimulationResult& fast) {
  EXPECT_SAME_BITS(ref.makespan.seconds(), fast.makespan.seconds());
  EXPECT_SAME_BITS(ref.total_energy.joules(), fast.total_energy.joules());
  EXPECT_SAME_BITS(ref.total_carbon.grams(), fast.total_carbon.grams());
  EXPECT_SAME_BITS(ref.idle_energy.joules(), fast.idle_energy.joules());
  EXPECT_SAME_BITS(ref.idle_carbon.grams(), fast.idle_carbon.grams());
  EXPECT_EQ(ref.completed_jobs, fast.completed_jobs);
  EXPECT_EQ(ref.walltime_kills, fast.walltime_kills);
  EXPECT_EQ(ref.budget_violations, fast.budget_violations);
  EXPECT_EQ(ref.node_failures, fast.node_failures);
  EXPECT_EQ(ref.job_failures, fast.job_failures);
  EXPECT_EQ(ref.jobs_failed, fast.jobs_failed);
  EXPECT_EQ(ref.checkpoints_taken, fast.checkpoints_taken);
  EXPECT_SAME_BITS(ref.lost_node_seconds, fast.lost_node_seconds);
  EXPECT_SAME_BITS(ref.checkpoint_node_seconds, fast.checkpoint_node_seconds);
  EXPECT_SAME_BITS(ref.wasted_energy.joules(), fast.wasted_energy.joules());
  EXPECT_SAME_BITS(ref.wasted_carbon.grams(), fast.wasted_carbon.grams());

  ASSERT_EQ(ref.jobs.size(), fast.jobs.size());
  for (std::size_t i = 0; i < ref.jobs.size(); ++i) {
    const auto& rj = ref.jobs[i];
    const auto& fj = fast.jobs[i];
    ASSERT_EQ(rj.spec.id, fj.spec.id);
    EXPECT_EQ(rj.completed, fj.completed) << "job " << rj.spec.id;
    EXPECT_EQ(rj.killed, fj.killed) << "job " << rj.spec.id;
    EXPECT_EQ(rj.failed, fj.failed) << "job " << rj.spec.id;
    EXPECT_EQ(rj.suspend_count, fj.suspend_count) << "job " << rj.spec.id;
    EXPECT_EQ(rj.checkpoint_count, fj.checkpoint_count) << "job " << rj.spec.id;
    EXPECT_EQ(rj.failure_count, fj.failure_count) << "job " << rj.spec.id;
    EXPECT_SAME_BITS(rj.start.seconds(), fj.start.seconds())
        << "job " << rj.spec.id;
    EXPECT_SAME_BITS(rj.finish.seconds(), fj.finish.seconds())
        << "job " << rj.spec.id;
    EXPECT_SAME_BITS(rj.energy.joules(), fj.energy.joules())
        << "job " << rj.spec.id;
    EXPECT_SAME_BITS(rj.carbon.grams(), fj.carbon.grams())
        << "job " << rj.spec.id;
    if (::testing::Test::HasFailure()) return;
  }

  // The per-tick series pin tick alignment: the fast paths must neither
  // drop, duplicate nor perturb a single sample.
  expect_same_series(ref.system_power, fast.system_power, "system_power");
  expect_same_series(ref.power_budget, fast.power_budget, "power_budget");
  expect_same_series(ref.carbon_intensity, fast.carbon_intensity,
                     "carbon_intensity");
  expect_same_series(ref.busy_nodes, fast.busy_nodes, "busy_nodes");
}

struct Combo {
  const char* scheduler;  // fcfs | easy | carbon-easy | easy+ydckpt | ckpt-dec
  std::uint64_t seed;
  int nodes;
  int jobs;
  double span_days;  // dense (short) vs sparse (long, exercises idle-ff)
  bool faults;
  // Completion-dense regime: hourly arrival waves of small short jobs at
  // a fine tick, so spans resolve many finishes via the in-span event
  // tick (releases, record emission, survivor compaction) rather than
  // integrating quietly to the horizon.
  bool waves = false;
};

std::unique_ptr<hpcsim::SchedulingPolicy> make_scheduler(const std::string& name) {
  if (name == "fcfs") return std::make_unique<sched::FcfsScheduler>();
  if (name == "easy") return std::make_unique<sched::EasyBackfillScheduler>();
  if (name == "carbon-easy") {
    sched::CarbonAwareEasyScheduler::Config cc;
    cc.max_hold = hours(6.0);
    cc.lookahead = hours(6.0);
    return std::make_unique<sched::CarbonAwareEasyScheduler>(
        cc, std::make_shared<carbon::PersistenceForecaster>());
  }
  if (name == "ckpt-dec") {
    sched::CheckpointDecorator::Config dc;
    return std::make_unique<sched::CheckpointDecorator>(
        dc, std::make_unique<sched::EasyBackfillScheduler>());
  }
  GREENHPC_REQUIRE(false, "unknown scheduler in equivalence combo");
  return nullptr;
}

hpcsim::SimulationResult run_once(const Combo& combo, bool reference_mode,
                                  bool span_completions) {
  core::ScenarioConfig sc;
  sc.cluster.nodes = combo.nodes;
  sc.cluster.node_tdp = watts(500.0);
  sc.cluster.node_idle = watts(110.0);
  sc.cluster.tick = combo.waves ? seconds(30.0) : minutes(2.0);
  sc.region = carbon::Region::Germany;
  sc.trace_span = days(combo.span_days + 4.0);
  sc.trace_step = minutes(15.0);
  sc.workload.job_count = combo.jobs;
  sc.workload.span = days(combo.span_days);
  sc.workload.max_job_nodes = combo.waves ? 2 : combo.nodes / 2;
  sc.workload.runtime_mean = hours(2.0);
  sc.workload.node_power_mean = watts(420.0);
  sc.workload.node_power_limit = watts(500.0);
  sc.workload.checkpointable_fraction = 0.5;
  sc.workload.moldable_fraction = 0.2;
  if (combo.waves) sc.workload.arrival_quantum = hours(1.0);
  sc.seed = combo.seed;
  const core::ScenarioRunner runner(sc);

  hpcsim::Simulator::Config cfg;
  cfg.cluster = runner.config().cluster;
  cfg.carbon_intensity = runner.trace();
  cfg.reference_mode = reference_mode;
  cfg.span_completions = span_completions;
  if (combo.faults) {
    for (int k = 0; k < 10; ++k) {
      cfg.faults.events.push_back(
          {hours(2.0 + 5.0 * k), 1 + (k % 2), minutes(90.0)});
    }
    cfg.faults.max_retries = 4;
    cfg.faults.backoff_base = minutes(5.0);
    cfg.faults.victim_seed = combo.seed ^ 0x5eedu;
  }

  std::unique_ptr<hpcsim::SchedulingPolicy> sched;
  std::unique_ptr<hpcsim::SchedulingPolicy> inner;
  if (std::string(combo.scheduler) == "easy+ydckpt") {
    inner = make_scheduler("easy");
    resilience::CheckpointPolicyConfig cp;
    cp.node_mtbf = hours(400.0);
    sched = std::make_unique<resilience::PeriodicCheckpointPolicy>(*inner, cp);
  } else {
    sched = make_scheduler(combo.scheduler);
  }

  hpcsim::Simulator sim(cfg, runner.jobs());
  return sim.run(*sched);
}

class FastPathEquivalence : public ::testing::TestWithParam<Combo> {};

TEST_P(FastPathEquivalence, ReferenceAndFastPathsMatchBitForBit) {
  const Combo& combo = GetParam();
  const auto ref = run_once(combo, /*reference_mode=*/true,
                            /*span_completions=*/true);
  const auto fast = run_once(combo, /*reference_mode=*/false,
                             /*span_completions=*/true);
  const auto fenced = run_once(combo, /*reference_mode=*/false,
                               /*span_completions=*/false);
  EXPECT_GT(ref.completed_jobs, 0);
  expect_equivalent(ref, fast);
  if (::testing::Test::HasFailure()) return;
  // The per-event fencing engine must agree too: a divergence here with
  // ref==fast passing would finger the in-span completion kernel's
  // fenced fallback path rather than the kernel itself.
  expect_equivalent(ref, fenced);
}

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  std::string s = info.param.scheduler;
  for (char& c : s) {
    if (c == '-' || c == '+') c = '_';
  }
  s += info.param.faults ? "_faults" : "_clean";
  s += info.param.waves ? "_waves"
                        : (info.param.span_days < 1.0 ? "_dense" : "_sparse");
  s += "_s" + std::to_string(info.param.seed);
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    Randomized, FastPathEquivalence,
    ::testing::Values(
        // Dense arrivals: spans ride over arrivals (FCFS) or break on them.
        Combo{"fcfs", 11, 32, 90, 0.5, false},
        Combo{"fcfs", 12, 48, 140, 0.5, true},
        Combo{"easy", 21, 32, 90, 0.5, false},
        Combo{"easy", 22, 48, 140, 0.5, true},
        Combo{"carbon-easy", 31, 32, 90, 0.5, false},
        Combo{"carbon-easy", 32, 48, 120, 0.5, true},
        // Sparse arrivals: idle gaps exercise fast-forward + span restarts.
        Combo{"fcfs", 41, 16, 30, 4.0, false},
        Combo{"easy", 42, 16, 30, 4.0, true},
        Combo{"carbon-easy", 43, 16, 30, 4.0, false},
        // Checkpoint layers bound the span horizon from the policy side.
        Combo{"easy+ydckpt", 51, 32, 80, 0.5, false},
        Combo{"easy+ydckpt", 52, 16, 40, 4.0, true},
        Combo{"ckpt-dec", 61, 32, 80, 0.5, false},
        // Completion-dense waves: hourly arrival quanta of small short
        // jobs at a 30 s tick — spans resolve runs of finishes through
        // the in-span event tick (release + quiescent_over_release
        // attestation + arrival-riding re-ask on every release).
        Combo{"fcfs", 71, 64, 260, 0.5, false, true},
        Combo{"easy", 72, 64, 260, 0.5, true, true},
        Combo{"carbon-easy", 73, 48, 200, 0.5, false, true},
        Combo{"easy+ydckpt", 74, 48, 180, 0.5, false, true}),
    combo_name);

}  // namespace
}  // namespace greenhpc
