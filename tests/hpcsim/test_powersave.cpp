#include <gtest/gtest.h>

#include "hpcsim/simulator.hpp"
#include "hpcsim/workload.hpp"
#include "testing/helpers.hpp"
#include "util/stats.hpp"
#include "util/error.hpp"

namespace greenhpc::hpcsim {
namespace {

using greenhpc::testing::constant_trace;
using greenhpc::testing::GreedyScheduler;
using greenhpc::testing::rigid_job;
using greenhpc::testing::small_cluster;

TEST(Powersave, EffectiveNodePower) {
  JobSpec j = rigid_job(1, seconds(0.0), 2, hours(1.0));
  j.node_power = watts(400.0);
  j.mpi_wait_fraction = 0.3;
  j.powersave_runtime = false;
  EXPECT_DOUBLE_EQ(j.effective_node_power().watts(), 400.0);
  j.powersave_runtime = true;
  // 400 * (1 - 0.6 * 0.3) = 328.
  EXPECT_DOUBLE_EQ(j.effective_node_power().watts(), 328.0);
  j.mpi_wait_fraction = 0.0;
  EXPECT_DOUBLE_EQ(j.effective_node_power().watts(), 400.0);
}

TEST(Powersave, PerformanceNeutralEnergySaving) {
  // The Countdown claim: same runtime, less energy.
  const auto cluster = small_cluster(4);
  JobSpec plain = rigid_job(1, seconds(0.0), 2, hours(2.0));
  plain.mpi_wait_fraction = 0.4;
  JobSpec saver = plain;
  saver.powersave_runtime = true;

  auto run_one = [&](const JobSpec& j) {
    Simulator::Config cfg;
    cfg.cluster = cluster;
    cfg.carbon_intensity = constant_trace(300.0, days(1.0));
    Simulator sim(cfg, {j});
    GreedyScheduler sched;
    return sim.run(sched);
  };
  const auto r_plain = run_one(plain);
  const auto r_saver = run_one(saver);
  EXPECT_NEAR(r_plain.jobs[0].finish.hours(), r_saver.jobs[0].finish.hours(), 0.02);
  // Energy ratio = 1 - 0.6*0.4 = 0.76 on the busy share.
  EXPECT_NEAR(r_saver.jobs[0].energy.joules() / r_plain.jobs[0].energy.joules(), 0.76,
              0.01);
  EXPECT_LT(r_saver.jobs[0].carbon.grams(), r_plain.jobs[0].carbon.grams());
}

TEST(Powersave, WaitFractionValidated) {
  JobSpec j = rigid_job(1, seconds(0.0), 2, hours(1.0));
  j.mpi_wait_fraction = 0.95;
  EXPECT_THROW(j.validate(), greenhpc::InvalidArgument);
  j.mpi_wait_fraction = -0.1;
  EXPECT_THROW(j.validate(), greenhpc::InvalidArgument);
}

TEST(Powersave, GeneratorAdoptionKnob) {
  WorkloadConfig cfg;
  cfg.job_count = 1000;
  cfg.span = days(2.0);
  cfg.powersave_adoption = 0.4;
  cfg.mpi_wait_mean = 0.25;
  const auto jobs = WorkloadGenerator(cfg, 3).generate();
  int adopters = 0;
  util::RunningStats waits;
  for (const auto& j : jobs) {
    adopters += j.powersave_runtime ? 1 : 0;
    waits.add(j.mpi_wait_fraction);
  }
  EXPECT_NEAR(adopters / 1000.0, 0.4, 0.05);
  EXPECT_NEAR(waits.mean(), 0.25, 0.02);
}

TEST(Powersave, AdoptionReducesFleetEnergy) {
  WorkloadConfig wl;
  wl.job_count = 150;
  wl.span = days(2.0);
  wl.max_job_nodes = 8;
  wl.mpi_wait_mean = 0.25;

  auto total_energy = [&](double adoption) {
    WorkloadConfig cfg = wl;
    cfg.powersave_adoption = adoption;
    // Same seed: identical jobs except the adoption flag.
    const auto jobs = WorkloadGenerator(cfg, 77).generate();
    Simulator::Config sim_cfg;
    sim_cfg.cluster = small_cluster(32);
    sim_cfg.carbon_intensity = constant_trace(300.0, days(1.0));
    Simulator sim(sim_cfg, jobs);
    GreedyScheduler sched;
    return sim.run(sched).total_energy;
  };
  const Energy none = total_energy(0.0);
  const Energy full = total_energy(1.0);
  EXPECT_LT(full.joules(), none.joules() * 0.95);
}

}  // namespace
}  // namespace greenhpc::hpcsim
