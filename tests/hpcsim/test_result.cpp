#include "hpcsim/result.hpp"

#include <gtest/gtest.h>

#include "hpcsim/simulator.hpp"
#include "testing/helpers.hpp"

namespace greenhpc::hpcsim {
namespace {

using greenhpc::testing::constant_trace;
using greenhpc::testing::GreedyScheduler;
using greenhpc::testing::rigid_job;
using greenhpc::testing::small_cluster;

JobRecord make_record(Duration submit, Duration start, Duration finish,
                      Duration runtime) {
  JobRecord r;
  r.spec = rigid_job(1, submit, 2, runtime);
  r.completed = true;
  r.submit = submit;
  r.start = start;
  r.finish = finish;
  return r;
}

TEST(JobRecord, WaitAndTurnaround) {
  const auto r = make_record(hours(1.0), hours(3.0), hours(5.0), hours(2.0));
  EXPECT_DOUBLE_EQ(r.wait().hours(), 2.0);
  EXPECT_DOUBLE_EQ(r.turnaround().hours(), 4.0);
}

TEST(JobRecord, BoundedSlowdown) {
  // Turnaround 4h, runtime 2h -> slowdown 2.
  EXPECT_DOUBLE_EQ(
      make_record(hours(1.0), hours(3.0), hours(5.0), hours(2.0)).bounded_slowdown(),
      2.0);
  // Very short job: the 10-minute bound floors the slowdown at 1.
  const auto tiny = make_record(seconds(0.0), seconds(0.0), minutes(5.0), minutes(1.0));
  EXPECT_DOUBLE_EQ(tiny.bounded_slowdown(), 1.0);
}

TEST(SimulationResult, MetricsFromRealRun) {
  const auto cluster = small_cluster(8);
  std::vector<JobSpec> jobs = {
      rigid_job(1, seconds(0.0), 4, hours(2.0)),
      rigid_job(2, seconds(0.0), 4, hours(2.0)),
      rigid_job(3, hours(1.0), 8, hours(1.0)),
  };
  Simulator::Config cfg;
  cfg.cluster = cluster;
  cfg.carbon_intensity = constant_trace(200.0, days(1.0));
  Simulator sim(cfg, jobs);
  GreedyScheduler sched;
  const auto result = sim.run(sched);

  EXPECT_EQ(result.completed_jobs, 3);
  EXPECT_GT(result.makespan.hours(), 2.9);
  EXPECT_GT(result.utilization(cluster), 0.3);
  EXPECT_LE(result.utilization(cluster), 1.0);
  EXPECT_GT(result.mean_bounded_slowdown(), 0.99);
  EXPECT_GE(result.mean_wait_hours(), 0.0);
  EXPECT_GT(result.node_hours_completed(), 23.0);  // 8 + 8 + 8 node-hours
  EXPECT_GT(result.carbon_per_node_hour(), 0.0);
  // Constant intensity: everything or nothing is green.
  EXPECT_DOUBLE_EQ(result.green_energy_share(250.0), 1.0);
  EXPECT_DOUBLE_EQ(result.green_energy_share(150.0), 0.0);
}

TEST(SimulationResult, EmptyMetricsAreZero) {
  SimulationResult r;
  EXPECT_DOUBLE_EQ(r.mean_wait_hours(), 0.0);
  EXPECT_DOUBLE_EQ(r.mean_bounded_slowdown(), 0.0);
  EXPECT_DOUBLE_EQ(r.node_hours_completed(), 0.0);
  EXPECT_DOUBLE_EQ(r.carbon_per_node_hour(), 0.0);
  EXPECT_DOUBLE_EQ(r.green_energy_share(100.0), 0.0);
  EXPECT_DOUBLE_EQ(r.utilization(small_cluster(4)), 0.0);
}

TEST(SimulationResult, IncompleteJobsExcludedFromMeans) {
  SimulationResult r;
  JobRecord done = make_record(seconds(0.0), hours(1.0), hours(2.0), hours(1.0));
  JobRecord pending;
  pending.spec = rigid_job(2, seconds(0.0), 2, hours(1.0));
  pending.completed = false;
  r.jobs = {done, pending};
  EXPECT_DOUBLE_EQ(r.mean_wait_hours(), 1.0);
  EXPECT_DOUBLE_EQ(r.node_hours_completed(), 2.0);
}

}  // namespace
}  // namespace greenhpc::hpcsim
