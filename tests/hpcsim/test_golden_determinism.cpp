// Golden-determinism fixture (perf guardrail).
//
// The hashes below were recorded from the reference scenario BEFORE the
// simulator hot-path optimizations (dense slot handles, ordered position-
// bookkept erases, pow caching, cursor sampling, idle fast-forward) went
// in. The optimized engine must reproduce every run bit-for-bit: total
// energy, total carbon, makespan and each job's start/finish/energy/
// carbon feed an FNV-1a stream whose digest must match exactly. A failure
// here means an "optimization" changed simulation results.
//
// Covers a fault-free FCFS run, a fault-free carbon-aware EASY run (the
// two extremes of policy complexity), a fault-injected EASY run (the
// victim-draw and requeue machinery) and a completion-dense EASY run
// (the in-span completion kernel, cross-checked against the fenced
// engine).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "carbon/forecast.hpp"
#include "core/scenario.hpp"
#include "hpcsim/simulator.hpp"
#include "sched/carbon_aware.hpp"
#include "sched/easy_backfill.hpp"
#include "sched/fcfs.hpp"

namespace greenhpc {
namespace {

/// FNV-1a over the raw bit patterns of the values fed in; byte-exact, so
/// any last-bit drift in a double changes the digest.
class ResultHasher {
 public:
  void add(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    add_bits(bits);
  }
  void add(std::int64_t v) { add_bits(static_cast<std::uint64_t>(v)); }
  [[nodiscard]] std::uint64_t digest() const { return h_; }

 private:
  void add_bits(std::uint64_t bits) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (bits >> (8 * i)) & 0xffu;
      h_ *= 0x100000001b3ull;
    }
  }
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

std::uint64_t hash_result(const hpcsim::SimulationResult& r) {
  ResultHasher h;
  h.add(r.total_energy.joules());
  h.add(r.total_carbon.grams());
  h.add(r.idle_energy.joules());
  h.add(r.idle_carbon.grams());
  h.add(r.makespan.seconds());
  h.add(static_cast<std::int64_t>(r.completed_jobs));
  h.add(static_cast<std::int64_t>(r.walltime_kills));
  h.add(static_cast<std::int64_t>(r.budget_violations));
  h.add(static_cast<std::int64_t>(r.node_failures));
  h.add(static_cast<std::int64_t>(r.job_failures));
  h.add(static_cast<std::int64_t>(r.jobs_failed));
  h.add(r.wasted_energy.joules());
  h.add(r.wasted_carbon.grams());
  h.add(r.lost_node_seconds);
  for (const auto& j : r.jobs) {
    h.add(static_cast<std::int64_t>(j.spec.id));
    h.add(j.start.seconds());
    h.add(j.finish.seconds());
    h.add(j.energy.joules());
    h.add(j.carbon.grams());
    h.add(static_cast<std::int64_t>(j.completed ? 1 : 0));
    h.add(static_cast<std::int64_t>(j.suspend_count));
    h.add(static_cast<std::int64_t>(j.failure_count));
  }
  // The per-tick series pin tick alignment (fast-forward must not drop
  // or duplicate samples).
  h.add(static_cast<std::int64_t>(r.system_power.size()));
  for (double v : r.system_power.values()) h.add(v);
  for (double v : r.busy_nodes.values()) h.add(v);
  return h.digest();
}

/// The bench reference scenario (bench_common.hpp), duplicated here so the
/// fixture does not depend on bench headers.
core::ScenarioConfig golden_scenario() {
  core::ScenarioConfig cfg;
  cfg.cluster.nodes = 256;
  cfg.cluster.node_tdp = watts(500.0);
  cfg.cluster.node_idle = watts(110.0);
  cfg.cluster.tick = minutes(2.0);
  cfg.region = carbon::Region::Germany;
  cfg.trace_span = days(12.0);
  cfg.trace_step = minutes(15.0);
  cfg.workload.job_count = 900;
  cfg.workload.span = days(7.0);
  cfg.workload.max_job_nodes = 128;
  cfg.workload.runtime_mean = hours(3.0);
  cfg.workload.node_power_mean = watts(420.0);
  cfg.workload.node_power_limit = watts(500.0);
  cfg.workload.checkpointable_fraction = 0.5;
  cfg.seed = 2023;
  return cfg;
}

/// The bench dense scale (bench_perf.cpp dense_config), duplicated for the
/// same reason: 512 nodes, 2000 single-node jobs arriving in hourly waves
/// at a 15 s tick — the completion-bound regime the in-span completion
/// kernel resolves analytically.
core::ScenarioConfig dense_scenario() {
  core::ScenarioConfig cfg;
  cfg.cluster.nodes = 512;
  cfg.cluster.node_tdp = watts(500.0);
  cfg.cluster.node_idle = watts(110.0);
  cfg.cluster.tick = seconds(15.0);
  cfg.region = carbon::Region::Germany;
  cfg.trace_span = days(4.0);
  cfg.trace_step = minutes(15.0);
  cfg.workload.job_count = 2000;
  cfg.workload.span = days(1.5);
  cfg.workload.arrival_quantum = minutes(60.0);
  cfg.workload.max_job_nodes = 1;
  cfg.workload.runtime_mean = minutes(300.0);
  cfg.workload.runtime_max = hours(12.0);
  cfg.workload.node_power_mean = watts(420.0);
  cfg.workload.node_power_limit = watts(500.0);
  cfg.seed = 2023;
  return cfg;
}

hpcsim::SimulationResult run_dense(hpcsim::SchedulingPolicy& sched,
                                   bool span_completions) {
  const core::ScenarioRunner runner(dense_scenario());
  hpcsim::Simulator::Config cfg;
  cfg.cluster = runner.config().cluster;
  cfg.carbon_intensity = runner.trace();
  cfg.span_completions = span_completions;
  hpcsim::Simulator sim(cfg, runner.jobs());
  return sim.run(sched);
}

hpcsim::SimulationResult run_golden(hpcsim::SchedulingPolicy& sched,
                                    bool with_faults) {
  const core::ScenarioRunner runner(golden_scenario());
  hpcsim::Simulator::Config cfg;
  cfg.cluster = runner.config().cluster;
  cfg.carbon_intensity = runner.trace();
  if (with_faults) {
    // Deterministic failure schedule across the workload span: every ~7 h
    // a small burst of nodes goes down for two hours.
    for (int k = 0; k < 24; ++k) {
      cfg.faults.events.push_back(
          {hours(3.0 + 7.0 * k), 1 + (k % 3), hours(2.0)});
    }
    cfg.faults.max_retries = 6;
    cfg.faults.backoff_base = minutes(5.0);
    cfg.faults.victim_seed = 99;
  }
  hpcsim::Simulator sim(cfg, runner.jobs());
  return sim.run(sched);
}

// Pre-optimization digests (seed engine, reference scenario, seed 2023).
constexpr std::uint64_t kGoldenFcfs = 0x75c804ab89d0e737ull;
constexpr std::uint64_t kGoldenCarbonEasy = 0x06d083d01b4c2209ull;
constexpr std::uint64_t kGoldenEasyFaults = 0x83eb17206180faa9ull;
// Dense completion-bound scale, recorded with the in-span completion
// kernel the same day the fenced engine produced the identical digest
// (the test asserts both, so a drift in either path fails).
constexpr std::uint64_t kGoldenEasyDense = 0xf8aadb5c80df7733ull;

TEST(GoldenDeterminism, FcfsReferenceScenario) {
  sched::FcfsScheduler fcfs;
  const auto r = run_golden(fcfs, /*with_faults=*/false);
  const std::uint64_t d = hash_result(r);
  RecordProperty("digest", std::to_string(d));
  std::printf("golden fcfs digest: 0x%016llx\n",
              static_cast<unsigned long long>(d));
  EXPECT_EQ(d, kGoldenFcfs);
}

TEST(GoldenDeterminism, CarbonAwareEasyReferenceScenario) {
  sched::CarbonAwareEasyScheduler::Config cc;
  cc.max_hold = hours(24.0);
  cc.lookahead = hours(24.0);
  sched::CarbonAwareEasyScheduler ca(
      cc, std::make_shared<carbon::PersistenceForecaster>());
  const auto r = run_golden(ca, /*with_faults=*/false);
  const std::uint64_t d = hash_result(r);
  RecordProperty("digest", std::to_string(d));
  std::printf("golden carbon-easy digest: 0x%016llx\n",
              static_cast<unsigned long long>(d));
  EXPECT_EQ(d, kGoldenCarbonEasy);
}

TEST(GoldenDeterminism, EasyWithInjectedFaults) {
  sched::EasyBackfillScheduler easy;
  const auto r = run_golden(easy, /*with_faults=*/true);
  const std::uint64_t d = hash_result(r);
  RecordProperty("digest", std::to_string(d));
  std::printf("golden easy+faults digest: 0x%016llx\n",
              static_cast<unsigned long long>(d));
  EXPECT_GT(r.node_failures, 0);
  EXPECT_EQ(d, kGoldenEasyFaults);
}

// The completion-dense regime: thousands of single-node finishes resolve
// inside batch spans. Pins the absolute digest AND cross-checks the
// fenced (per-event span exit) engine against the in-span completion
// kernel on the same scenario — a drift in either path fails here.
TEST(GoldenDeterminism, EasyDenseCompletionScenario) {
  sched::EasyBackfillScheduler easy_inspan;
  const auto r = run_dense(easy_inspan, /*span_completions=*/true);
  const std::uint64_t d = hash_result(r);
  RecordProperty("digest", std::to_string(d));
  std::printf("golden easy dense digest: 0x%016llx\n",
              static_cast<unsigned long long>(d));
  EXPECT_EQ(r.walltime_kills + r.completed_jobs, r.jobs.size());
  EXPECT_EQ(d, kGoldenEasyDense);

  sched::EasyBackfillScheduler easy_fenced;
  const auto rf = run_dense(easy_fenced, /*span_completions=*/false);
  EXPECT_EQ(hash_result(rf), d) << "fenced engine diverged from in-span kernel";
}

}  // namespace
}  // namespace greenhpc
