#include <gtest/gtest.h>

#include "hpcsim/simulator.hpp"
#include "testing/helpers.hpp"

namespace greenhpc::hpcsim {
namespace {

using greenhpc::testing::constant_trace;
using greenhpc::testing::GreedyScheduler;
using greenhpc::testing::rigid_job;
using greenhpc::testing::small_cluster;

Simulator::Config cfg(bool enforce) {
  Simulator::Config c;
  c.cluster = small_cluster(4);
  c.cluster.enforce_walltime = enforce;
  c.carbon_intensity = constant_trace(200.0, days(2.0));
  return c;
}

TEST(Walltime, JobWithinLimitUnaffected) {
  // runtime 1h, walltime 1.5h -> completes normally.
  Simulator sim(cfg(true), {rigid_job(1, seconds(0.0), 2, hours(1.0))});
  GreedyScheduler sched;
  const auto r = sim.run(sched);
  EXPECT_TRUE(r.jobs[0].completed);
  EXPECT_FALSE(r.jobs[0].killed);
  EXPECT_EQ(r.walltime_kills, 0);
}

TEST(Walltime, UnderestimatedJobIsKilled) {
  JobSpec j = rigid_job(1, seconds(0.0), 2, hours(2.0));
  j.walltime = hours(2.0);
  // Slow the job down with a power cap so it overruns its walltime.
  class HalfBudget final : public PowerBudgetPolicy {
   public:
    Power system_budget(Duration, double, const ClusterConfig&) override {
      return watts(0.5 * 2 * 400.0 + 2 * 100.0);  // cap=0.5 with 2 idle nodes
    }
    std::string name() const override { return "half"; }
  };
  Simulator sim(cfg(true), {j});
  GreedyScheduler sched;
  HalfBudget budget;
  const auto r = sim.run(sched, &budget);
  EXPECT_FALSE(r.jobs[0].completed);
  EXPECT_TRUE(r.jobs[0].killed);
  EXPECT_EQ(r.walltime_kills, 1);
  EXPECT_NEAR(r.jobs[0].finish.hours(), 2.0, 0.05);
  EXPECT_EQ(r.completed_jobs, 0);
}

TEST(Walltime, NotEnforcedByDefault) {
  JobSpec j = rigid_job(1, seconds(0.0), 2, hours(2.0));
  j.walltime = hours(2.0);
  class HalfBudget final : public PowerBudgetPolicy {
   public:
    Power system_budget(Duration, double, const ClusterConfig&) override {
      return watts(0.5 * 2 * 400.0 + 2 * 100.0);
    }
    std::string name() const override { return "half"; }
  };
  Simulator sim(cfg(false), {j});
  GreedyScheduler sched;
  HalfBudget budget;
  const auto r = sim.run(sched, &budget);
  EXPECT_TRUE(r.jobs[0].completed);
  EXPECT_EQ(r.walltime_kills, 0);
}

TEST(Walltime, ClockPausesWhileSuspended) {
  // Job: runtime 2h, walltime 2.2h. Suspended for 3h in the middle; with
  // requeue semantics the suspension must not consume walltime, so it
  // still completes (checkpoint overhead 6min keeps total under limit).
  JobSpec j = rigid_job(1, seconds(0.0), 2, hours(2.0));
  j.walltime = hours(2.3);
  j.checkpointable = true;
  j.checkpoint_overhead = minutes(6.0);
  class SuspendResume final : public SchedulingPolicy {
   public:
    void on_tick(SimulationView& view) override {
      const std::vector<JobId> pending = view.pending_jobs();
      for (JobId id : pending) (void)view.start(id, 2);
      if (view.now() >= hours(1.0) && view.now() < hours(1.0) + minutes(1.0)) {
        const std::vector<JobId> running = view.running_jobs();
        for (JobId id : running) (void)view.suspend(id);
      }
      if (view.now() >= hours(4.0)) {
        const std::vector<JobId> suspended = view.suspended_jobs();
        for (JobId id : suspended) (void)view.resume(id, 2);
      }
    }
    std::string name() const override { return "susres"; }
  };
  Simulator sim(cfg(true), {j});
  SuspendResume sched;
  const auto r = sim.run(sched);
  EXPECT_TRUE(r.jobs[0].completed);
  EXPECT_FALSE(r.jobs[0].killed);
}

TEST(Walltime, KilledJobStillChargedEnergy) {
  JobSpec j = rigid_job(1, seconds(0.0), 2, hours(2.0));
  j.walltime = hours(2.0);
  class HalfBudget final : public PowerBudgetPolicy {
   public:
    Power system_budget(Duration, double, const ClusterConfig&) override {
      return watts(0.5 * 2 * 400.0 + 2 * 100.0);
    }
    std::string name() const override { return "half"; }
  };
  Simulator sim(cfg(true), {j});
  GreedyScheduler sched;
  HalfBudget budget;
  const auto r = sim.run(sched, &budget);
  // 2 nodes at 200 W (capped) for 2 h = 0.8 kWh.
  EXPECT_NEAR(r.jobs[0].energy.kilowatt_hours(), 0.8, 0.05);
  EXPECT_GT(r.jobs[0].carbon.grams(), 0.0);
}

}  // namespace
}  // namespace greenhpc::hpcsim
