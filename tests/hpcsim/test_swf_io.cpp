#include "hpcsim/swf_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "hpcsim/simulator.hpp"
#include "hpcsim/workload.hpp"
#include "testing/helpers.hpp"
#include "util/error.hpp"

namespace greenhpc::hpcsim {
namespace {

TEST(Swf, ParsesMinimalTrace) {
  std::istringstream in(
      "; Version: 2.2\n"
      "; Computer: test\n"
      "1 0 5 3600 4 -1 -1 8 7200 -1 1 12 3 -1 -1 -1 -1 -1\n"
      "2 600 -1 1800 2 -1 -1 -1 -1 -1 1 7 1 -1 -1 -1 -1 -1\n");
  const auto imported = load_swf(in);
  EXPECT_EQ(imported.skipped, 0);
  ASSERT_EQ(imported.jobs.size(), 2u);
  const JobSpec& j1 = imported.jobs[0];
  EXPECT_DOUBLE_EQ(j1.submit.seconds(), 0.0);
  EXPECT_DOUBLE_EQ(j1.runtime.hours(), 1.0);
  EXPECT_EQ(j1.nodes_requested, 8);
  EXPECT_EQ(j1.nodes_used, 4);
  EXPECT_DOUBLE_EQ(j1.walltime.seconds(), 7200.0);
  EXPECT_EQ(j1.user, "user12");
  EXPECT_EQ(j1.project, "proj3");
  // Second job: no requested procs -> uses used procs; no req time ->
  // 1.5x runtime.
  const JobSpec& j2 = imported.jobs[1];
  EXPECT_EQ(j2.nodes_requested, 2);
  EXPECT_DOUBLE_EQ(j2.walltime.seconds(), 2700.0);
}

TEST(Swf, SkipsUnschedulableEntries) {
  std::istringstream in(
      "1 0 -1 -1 4 -1 -1 4 -1 -1 0 1 1 -1 -1 -1 -1 -1\n"   // unknown runtime
      "2 0 -1 3600 -1 -1 -1 -1 -1 -1 0 1 1 -1 -1 -1 -1 -1\n"  // no procs
      "3 0 -1 3600 4 -1 -1 4 -1 -1 1 1 1 -1 -1 -1 -1 -1\n"   // good
      "garbage line\n");
  const auto imported = load_swf(in);
  EXPECT_EQ(imported.jobs.size(), 1u);
  EXPECT_EQ(imported.skipped, 3);
}

TEST(Swf, MaxNodesClamping) {
  std::istringstream in("1 0 -1 3600 512 -1 -1 512 -1 -1 1 1 1 -1 -1 -1 -1 -1\n");
  SwfDefaults defaults;
  defaults.max_nodes = 64;
  const auto imported = load_swf(in, defaults);
  ASSERT_EQ(imported.jobs.size(), 1u);
  EXPECT_EQ(imported.jobs[0].nodes_requested, 64);
}

TEST(Swf, RoundTripsGeneratedWorkload) {
  WorkloadConfig cfg;
  cfg.job_count = 60;
  cfg.span = days(1.0);
  cfg.max_job_nodes = 16;
  const auto jobs = WorkloadGenerator(cfg, 5).generate();
  std::stringstream buffer;
  save_swf(jobs, buffer);
  const auto imported = load_swf(buffer);
  EXPECT_EQ(imported.skipped, 0);
  ASSERT_EQ(imported.jobs.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_NEAR(imported.jobs[i].submit.seconds(), jobs[i].submit.seconds(), 1.0);
    EXPECT_NEAR(imported.jobs[i].runtime.seconds(), jobs[i].runtime.seconds(), 1.0);
    EXPECT_EQ(imported.jobs[i].nodes_requested, jobs[i].nodes_requested);
    EXPECT_EQ(imported.jobs[i].user, jobs[i].user);
  }
}

TEST(Swf, ImportedTraceRunsThroughSimulator) {
  std::istringstream in(
      "1 0 -1 3600 4 -1 -1 4 5400 -1 1 1 1 -1 -1 -1 -1 -1\n"
      "2 300 -1 1800 8 -1 -1 8 3600 -1 1 2 1 -1 -1 -1 -1 -1\n"
      "3 900 -1 7200 2 -1 -1 2 10800 -1 1 3 2 -1 -1 -1 -1 -1\n");
  const auto imported = load_swf(in);
  Simulator::Config cfg;
  cfg.cluster = greenhpc::testing::small_cluster(16);
  cfg.carbon_intensity = greenhpc::testing::constant_trace(300.0, days(1.0));
  Simulator sim(cfg, imported.jobs);
  greenhpc::testing::GreedyScheduler sched;
  const auto result = sim.run(sched);
  EXPECT_EQ(result.completed_jobs, 3);
}

TEST(Swf, EmptyInputYieldsNothing) {
  std::istringstream in("; just a header\n");
  const auto imported = load_swf(in);
  EXPECT_TRUE(imported.jobs.empty());
  EXPECT_EQ(imported.skipped, 0);
}

}  // namespace
}  // namespace greenhpc::hpcsim
