#include "hpcsim/workload.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace greenhpc::hpcsim {
namespace {

WorkloadConfig base_config() {
  WorkloadConfig cfg;
  cfg.job_count = 500;
  cfg.span = days(3.0);
  cfg.max_job_nodes = 64;
  return cfg;
}

TEST(Workload, DeterministicForSeed) {
  const auto a = WorkloadGenerator(base_config(), 7).generate();
  const auto b = WorkloadGenerator(base_config(), 7).generate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].submit, b[i].submit);
    EXPECT_EQ(a[i].nodes_used, b[i].nodes_used);
    EXPECT_EQ(a[i].runtime, b[i].runtime);
  }
}

TEST(Workload, AllJobsValidAndSorted) {
  const auto jobs = WorkloadGenerator(base_config(), 11).generate();
  ASSERT_EQ(jobs.size(), 500u);
  Duration prev = seconds(-1.0);
  for (const auto& j : jobs) {
    EXPECT_NO_THROW(j.validate());
    EXPECT_GE(j.submit, prev);
    prev = j.submit;
    EXPECT_GE(j.submit.seconds(), 0.0);
    EXPECT_LE(j.submit, days(3.0));
    EXPECT_LE(j.nodes_used, 64);
  }
}

TEST(Workload, RuntimeDistributionMatchesMean) {
  WorkloadConfig cfg = base_config();
  cfg.job_count = 4000;
  cfg.runtime_mean = hours(3.0);
  const auto jobs = WorkloadGenerator(cfg, 13).generate();
  util::RunningStats s;
  for (const auto& j : jobs) s.add(j.runtime.hours());
  // Clamping to [10min, 24h] biases slightly; stay within 20%.
  EXPECT_NEAR(s.mean(), 3.0, 0.6);
}

TEST(Workload, NoOverAllocationByDefault) {
  const auto jobs = WorkloadGenerator(base_config(), 17).generate();
  for (const auto& j : jobs) EXPECT_EQ(j.nodes_requested, j.nodes_used);
}

TEST(Workload, OverAllocationKnob) {
  WorkloadConfig cfg = base_config();
  cfg.job_count = 3000;
  cfg.over_allocation_mean = 1.5;
  const auto jobs = WorkloadGenerator(cfg, 19).generate();
  double ratio_sum = 0.0;
  int over = 0;
  for (const auto& j : jobs) {
    EXPECT_GE(j.nodes_requested, j.nodes_used);
    ratio_sum += static_cast<double>(j.nodes_requested) / j.nodes_used;
    over += j.nodes_requested > j.nodes_used ? 1 : 0;
  }
  EXPECT_GT(over, static_cast<int>(jobs.size()) / 2);
  // Ceiling + clamping inflate the mean ratio above the raw 1.5 knob.
  EXPECT_GT(ratio_sum / static_cast<double>(jobs.size()), 1.3);
}

TEST(Workload, MalleableFraction) {
  WorkloadConfig cfg = base_config();
  cfg.job_count = 2000;
  cfg.malleable_fraction = 0.4;
  const auto jobs = WorkloadGenerator(cfg, 23).generate();
  int malleable = 0;
  for (const auto& j : jobs) {
    if (j.kind == JobKind::Malleable) {
      ++malleable;
      EXPECT_LE(j.min_nodes, j.nodes_used);
      EXPECT_GE(j.max_nodes, j.nodes_used);
    }
  }
  EXPECT_NEAR(malleable / 2000.0, 0.4, 0.05);
}

TEST(Workload, CheckpointableFraction) {
  WorkloadConfig cfg = base_config();
  cfg.job_count = 2000;
  cfg.checkpointable_fraction = 0.7;
  const auto jobs = WorkloadGenerator(cfg, 29).generate();
  int ckpt = 0;
  for (const auto& j : jobs) ckpt += j.checkpointable ? 1 : 0;
  EXPECT_NEAR(ckpt / 2000.0, 0.7, 0.05);
}

TEST(Workload, NodePowerClamped) {
  WorkloadConfig cfg = base_config();
  cfg.job_count = 1000;
  const auto jobs = WorkloadGenerator(cfg, 31).generate();
  for (const auto& j : jobs) {
    EXPECT_GE(j.node_power.watts(), 200.0);  // 0.5 * mean
    EXPECT_LE(j.node_power.watts(), 500.0);  // limit
  }
}

TEST(Workload, DiurnalSubmissionPeak) {
  WorkloadConfig cfg = base_config();
  cfg.job_count = 8000;
  cfg.span = days(7.0);
  cfg.diurnal_amplitude = 0.8;
  const auto jobs = WorkloadGenerator(cfg, 37).generate();
  int afternoon = 0, night = 0;
  for (const auto& j : jobs) {
    const double hour = std::fmod(j.submit.hours(), 24.0);
    if (hour >= 12.0 && hour < 16.0) ++afternoon;
    if (hour >= 0.0 && hour < 4.0) ++night;
  }
  EXPECT_GT(afternoon, night);
}

TEST(Workload, UserPoolRespected) {
  WorkloadConfig cfg = base_config();
  cfg.user_count = 5;
  const auto jobs = WorkloadGenerator(cfg, 41).generate();
  for (const auto& j : jobs) {
    EXPECT_TRUE(j.user == "user0" || j.user == "user1" || j.user == "user2" ||
                j.user == "user3" || j.user == "user4");
  }
}

TEST(Workload, ConfigValidation) {
  WorkloadConfig cfg = base_config();
  cfg.job_count = 0;
  EXPECT_THROW(WorkloadGenerator(cfg, 1), greenhpc::InvalidArgument);
  cfg = base_config();
  cfg.over_allocation_mean = 0.5;
  EXPECT_THROW(WorkloadGenerator(cfg, 1), greenhpc::InvalidArgument);
  cfg = base_config();
  cfg.malleable_fraction = 1.5;
  EXPECT_THROW(WorkloadGenerator(cfg, 1), greenhpc::InvalidArgument);
}

}  // namespace
}  // namespace greenhpc::hpcsim
