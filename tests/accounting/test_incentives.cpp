#include "accounting/incentives.hpp"

#include <gtest/gtest.h>

#include "hpcsim/simulator.hpp"
#include "testing/helpers.hpp"
#include "util/error.hpp"

namespace greenhpc::accounting {
namespace {

using greenhpc::testing::constant_trace;
using greenhpc::testing::GreedyScheduler;
using greenhpc::testing::rigid_job;
using greenhpc::testing::small_cluster;
using greenhpc::testing::square_trace;

hpcsim::SimulationResult run_workload(const util::TimeSeries& trace, int job_count = 40) {
  std::vector<hpcsim::JobSpec> jobs;
  for (int i = 0; i < job_count; ++i) {
    jobs.push_back(rigid_job(i + 1, hours(0.5 * i), 2, hours(2.0)));
  }
  hpcsim::Simulator::Config cfg;
  cfg.cluster = small_cluster(64);
  cfg.carbon_intensity = trace;
  hpcsim::Simulator sim(cfg, std::move(jobs));
  GreedyScheduler sched;
  return sim.run(sched);
}

TEST(Charge, GreenShareDiscounted) {
  const auto trace = square_trace(100.0, 500.0, hours(6.0), days(2.0));
  const auto result = run_workload(trace, 4);
  PricingPolicy policy{.green_discount = 0.5, .green_quantile = 0.5};
  // Job 1 starts at t=0 (green phase, runs 2h fully green).
  const Charge ch = charge_job(result.jobs[0], trace, policy);
  EXPECT_NEAR(ch.green_fraction, 1.0, 0.05);
  EXPECT_NEAR(ch.node_hours_billed, ch.node_hours_raw * 0.5, 0.05 * ch.node_hours_raw);
}

TEST(Charge, DirtyShareFullPrice) {
  const auto trace = square_trace(100.0, 500.0, hours(6.0), days(2.0));
  const auto result = run_workload(trace, 16);
  PricingPolicy policy{.green_discount = 0.5, .green_quantile = 0.5};
  // Find a job running fully in the dirty phase (starts after t=6h).
  bool found = false;
  for (const auto& rec : result.jobs) {
    if (!rec.completed) continue;
    if (rec.start >= hours(6.0) && rec.finish <= hours(12.0)) {
      const Charge ch = charge_job(rec, trace, policy);
      EXPECT_NEAR(ch.green_fraction, 0.0, 0.05);
      EXPECT_NEAR(ch.node_hours_billed, ch.node_hours_raw, 0.05 * ch.node_hours_raw);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Charge, RawNodeHoursUseRequestedNodes) {
  const auto trace = constant_trace(200.0, days(2.0));
  const auto result = run_workload(trace, 1);
  const Charge ch = charge_job(result.jobs[0], trace, {});
  EXPECT_NEAR(ch.node_hours_raw, 2.0 * 2.0, 0.1);  // 2 nodes x 2 h
}

TEST(Incentive, NoDiscountNoShift) {
  const auto trace = square_trace(100.0, 500.0, hours(6.0), days(3.0));
  const auto result = run_workload(trace);
  IncentiveConfig cfg;
  cfg.pricing.green_discount = 0.0;
  const auto outcome = evaluate_incentive(result.jobs, trace, cfg, 7);
  EXPECT_DOUBLE_EQ(outcome.shifted_job_fraction, 0.0);
  EXPECT_DOUBLE_EQ(outcome.baseline_carbon.grams(), outcome.incentivized_carbon.grams());
}

TEST(Incentive, DiscountDrivesCarbonDown) {
  const auto trace = square_trace(100.0, 500.0, hours(6.0), days(3.0));
  const auto result = run_workload(trace);
  IncentiveConfig cfg;
  cfg.pricing.green_discount = 0.4;
  cfg.flexible_fraction = 0.6;
  cfg.shift_elasticity = 2.0;
  const auto outcome = evaluate_incentive(result.jobs, trace, cfg, 7);
  EXPECT_GT(outcome.shifted_job_fraction, 0.2);
  EXPECT_GT(outcome.carbon_reduction(), 0.05);
  EXPECT_LT(outcome.incentivized_carbon.grams(), outcome.baseline_carbon.grams());
}

TEST(Incentive, LargerDiscountShiftsMoreButBillsLess) {
  const auto trace = square_trace(100.0, 500.0, hours(6.0), days(3.0));
  const auto result = run_workload(trace);
  IncentiveConfig low;
  low.pricing.green_discount = 0.1;
  IncentiveConfig high;
  high.pricing.green_discount = 0.5;
  const auto o_low = evaluate_incentive(result.jobs, trace, low, 7);
  const auto o_high = evaluate_incentive(result.jobs, trace, high, 7);
  EXPECT_GE(o_high.shifted_job_fraction, o_low.shifted_job_fraction);
  EXPECT_LT(o_high.billed_node_hour_factor, o_low.billed_node_hour_factor);
  EXPECT_LE(o_high.incentivized_carbon.grams(), o_low.incentivized_carbon.grams());
}

TEST(Incentive, DeterministicBySeed) {
  const auto trace = square_trace(100.0, 500.0, hours(6.0), days(3.0));
  const auto result = run_workload(trace);
  IncentiveConfig cfg;
  cfg.pricing.green_discount = 0.3;
  const auto a = evaluate_incentive(result.jobs, trace, cfg, 42);
  const auto b = evaluate_incentive(result.jobs, trace, cfg, 42);
  EXPECT_DOUBLE_EQ(a.incentivized_carbon.grams(), b.incentivized_carbon.grams());
  EXPECT_DOUBLE_EQ(a.shifted_job_fraction, b.shifted_job_fraction);
}

TEST(Incentive, Preconditions) {
  const auto trace = constant_trace(100.0, days(1.0));
  IncentiveConfig bad;
  bad.flexible_fraction = 2.0;
  EXPECT_THROW((void)evaluate_incentive({}, trace, bad, 1), greenhpc::InvalidArgument);
  hpcsim::JobRecord rec;
  rec.spec = rigid_job(1, seconds(0.0), 2, hours(1.0));
  rec.completed = false;
  EXPECT_THROW((void)charge_job(rec, trace, {}), greenhpc::InvalidArgument);
  PricingPolicy bad_policy{.green_discount = 1.5, .green_quantile = 0.25};
  rec.completed = true;
  rec.start = seconds(0.0);
  rec.finish = hours(1.0);
  EXPECT_THROW((void)charge_job(rec, trace, bad_policy), greenhpc::InvalidArgument);
}

}  // namespace
}  // namespace greenhpc::accounting
