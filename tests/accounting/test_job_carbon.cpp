#include "accounting/job_carbon.hpp"

#include <gtest/gtest.h>

#include "hpcsim/simulator.hpp"
#include "testing/helpers.hpp"
#include "util/error.hpp"

namespace greenhpc::accounting {
namespace {

using greenhpc::testing::constant_trace;
using greenhpc::testing::GreedyScheduler;
using greenhpc::testing::rigid_job;
using greenhpc::testing::small_cluster;
using greenhpc::testing::square_trace;

hpcsim::SimulationResult run_jobs(std::vector<hpcsim::JobSpec> jobs,
                                  util::TimeSeries trace, int nodes = 8) {
  hpcsim::Simulator::Config cfg;
  cfg.cluster = small_cluster(nodes);
  cfg.carbon_intensity = std::move(trace);
  hpcsim::Simulator sim(cfg, std::move(jobs));
  GreedyScheduler sched;
  return sim.run(sched);
}

TEST(JobCarbon, ProfileMatchesRecord) {
  const auto result =
      run_jobs({rigid_job(1, seconds(0.0), 2, hours(2.0))}, constant_trace(400.0, days(1.0)));
  const auto p = profile_job(result.jobs[0], small_cluster(8), result.carbon_intensity);
  EXPECT_EQ(p.id, 1);
  EXPECT_DOUBLE_EQ(p.energy.joules(), result.jobs[0].energy.joules());
  EXPECT_DOUBLE_EQ(p.carbon.grams(), result.jobs[0].carbon.grams());
  EXPECT_NEAR(p.experienced_intensity, 400.0, 5.0);
  // Constant trace: no timing savings possible.
  EXPECT_NEAR(p.timing_savings_potential().grams(), 0.0,
              0.01 * p.carbon.grams() + 1e-9);
  EXPECT_NEAR(p.car_km, p.carbon.grams() / kCarGramsPerKm, 1e-9);
}

TEST(JobCarbon, TimingSavingsOnVariableTrace) {
  // Job runs in the dirty phase of a square wave: big timing savings.
  const auto trace = square_trace(100.0, 500.0, hours(6.0), days(1.0));
  const auto result = run_jobs({rigid_job(1, hours(6.5), 2, hours(4.0))}, trace);
  const auto p = profile_job(result.jobs[0], small_cluster(8), result.carbon_intensity);
  EXPECT_NEAR(p.experienced_intensity, 500.0, 20.0);
  EXPECT_GT(p.timing_savings_potential().grams(), 0.5 * p.carbon.grams());
  EXPECT_LE(p.best_case_carbon, p.carbon);
}

TEST(JobCarbon, OverAllocationWaste) {
  hpcsim::JobSpec fat = rigid_job(1, seconds(0.0), 8, hours(1.0));
  fat.nodes_used = 4;
  const auto result = run_jobs({fat}, constant_trace(300.0, days(1.0)));
  const auto p = profile_job(result.jobs[0], small_cluster(8), result.carbon_intensity);
  // 4 busy x 400 W vs 4 idle x 100 W -> waste = 400/2000 = 20%.
  EXPECT_NEAR(p.over_allocation_waste, 0.2, 0.01);
  const auto lean = rigid_job(2, seconds(0.0), 4, hours(1.0));
  const auto result2 = run_jobs({lean}, constant_trace(300.0, days(1.0)));
  const auto p2 =
      profile_job(result2.jobs[0], small_cluster(8), result2.carbon_intensity);
  EXPECT_DOUBLE_EQ(p2.over_allocation_waste, 0.0);
}

TEST(JobCarbon, ProfileAllCompletedJobs) {
  std::vector<hpcsim::JobSpec> jobs;
  for (int i = 1; i <= 5; ++i) jobs.push_back(rigid_job(i, minutes(i * 10.0), 2, hours(1.0)));
  const auto result = run_jobs(jobs, constant_trace(250.0, days(1.0)));
  const auto profiles = profile_jobs(result, small_cluster(8));
  EXPECT_EQ(profiles.size(), 5u);
}

TEST(JobCarbon, AggregateByUserSortsByCarbon) {
  std::vector<hpcsim::JobSpec> jobs;
  for (int i = 1; i <= 8; ++i) {
    auto j = rigid_job(i, minutes(i * 5.0), i <= 4 ? 1 : 4, hours(1.0));
    j.user = i <= 4 ? "alice" : "bob";
    j.project = "shared";
    jobs.push_back(j);
  }
  const auto result = run_jobs(jobs, constant_trace(250.0, days(1.0)), 16);
  const auto profiles = profile_jobs(result, small_cluster(16));
  const auto reports = aggregate_by_user(profiles);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].key, "bob");  // 4-node jobs -> more carbon
  EXPECT_GT(reports[0].carbon.grams(), reports[1].carbon.grams());
  EXPECT_EQ(reports[0].jobs, 4);
  const auto by_project = aggregate_by_project(profiles);
  ASSERT_EQ(by_project.size(), 1u);
  EXPECT_EQ(by_project[0].jobs, 8);
}

TEST(JobCarbon, ReportFormatContainsKeyFigures) {
  const auto result =
      run_jobs({rigid_job(7, seconds(0.0), 2, hours(1.0))}, constant_trace(400.0, days(1.0)));
  const auto p = profile_job(result.jobs[0], small_cluster(8), result.carbon_intensity);
  const std::string report = format_job_report(p);
  EXPECT_NE(report.find("Job 7"), std::string::npos);
  EXPECT_NE(report.find("kgCO2e"), std::string::npos);
  EXPECT_NE(report.find("driving a car"), std::string::npos);
  EXPECT_NE(report.find("kWh"), std::string::npos);
}

TEST(JobCarbon, IncompleteJobRejected) {
  hpcsim::JobRecord rec;
  rec.spec = rigid_job(1, seconds(0.0), 2, hours(1.0));
  rec.completed = false;
  EXPECT_THROW((void)profile_job(rec, small_cluster(8), constant_trace(100.0, days(1.0))),
               greenhpc::InvalidArgument);
}

}  // namespace
}  // namespace greenhpc::accounting
