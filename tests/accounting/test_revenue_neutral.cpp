#include <gtest/gtest.h>

#include "accounting/incentives.hpp"
#include "hpcsim/simulator.hpp"
#include "testing/helpers.hpp"
#include "util/error.hpp"

namespace greenhpc::accounting {
namespace {

using greenhpc::testing::GreedyScheduler;
using greenhpc::testing::rigid_job;
using greenhpc::testing::small_cluster;
using greenhpc::testing::square_trace;

hpcsim::SimulationResult run_workload(const util::TimeSeries& trace) {
  std::vector<hpcsim::JobSpec> jobs;
  for (int i = 0; i < 60; ++i) {
    jobs.push_back(rigid_job(i + 1, hours(0.4 * i), 2, hours(2.0)));
  }
  hpcsim::Simulator::Config cfg;
  cfg.cluster = small_cluster(64);
  cfg.carbon_intensity = trace;
  hpcsim::Simulator sim(cfg, std::move(jobs));
  GreedyScheduler sched;
  return sim.run(sched);
}

TEST(RevenueNeutral, FoundDiscountRespectsFloor) {
  const auto trace = square_trace(100.0, 500.0, hours(6.0), days(3.0));
  const auto result = run_workload(trace);
  IncentiveConfig cfg;
  cfg.flexible_fraction = 0.5;
  cfg.shift_elasticity = 2.0;
  const double floor = 0.90;
  const double d = max_discount_for_revenue_floor(result.jobs, trace, cfg, 3, floor);
  EXPECT_GT(d, 0.0);
  EXPECT_LT(d, 1.0);
  // At the found discount the billed factor sits at (or just above) the
  // floor; slightly above it violates.
  cfg.pricing.green_discount = d;
  EXPECT_GE(evaluate_incentive(result.jobs, trace, cfg, 3).billed_node_hour_factor,
            floor - 1e-6);
  cfg.pricing.green_discount = std::min(1.0, d + 0.05);
  EXPECT_LT(evaluate_incentive(result.jobs, trace, cfg, 3).billed_node_hour_factor,
            floor);
}

TEST(RevenueNeutral, LooserFloorAllowsBiggerDiscount) {
  const auto trace = square_trace(100.0, 500.0, hours(6.0), days(3.0));
  const auto result = run_workload(trace);
  IncentiveConfig cfg;
  const double d90 = max_discount_for_revenue_floor(result.jobs, trace, cfg, 5, 0.90);
  const double d70 = max_discount_for_revenue_floor(result.jobs, trace, cfg, 5, 0.70);
  EXPECT_GT(d70, d90);
}

TEST(RevenueNeutral, MatchesAnalyticSolutionWithoutShifting) {
  // With no behavioural shifting, the billed factor is analytic:
  // 1 - d * (green-weighted share of node-hours). On a 50/50 square wave
  // that share is ~0.5, so the max discount for floor f is ~2(1-f).
  const auto trace = square_trace(100.0, 500.0, hours(6.0), days(3.0));
  const auto result = run_workload(trace);
  IncentiveConfig cfg;
  cfg.flexible_fraction = 0.0;
  cfg.pricing.green_quantile = 0.5;
  const double d = max_discount_for_revenue_floor(result.jobs, trace, cfg, 5, 0.90);
  EXPECT_NEAR(d, 0.2, 0.05);
}

TEST(RevenueNeutral, Preconditions) {
  const auto trace = square_trace(100.0, 500.0, hours(6.0), days(1.0));
  EXPECT_THROW((void)max_discount_for_revenue_floor({}, trace, {}, 1, 0.0),
               greenhpc::InvalidArgument);
  EXPECT_THROW((void)max_discount_for_revenue_floor({}, trace, {}, 1, 1.5),
               greenhpc::InvalidArgument);
}

}  // namespace
}  // namespace greenhpc::accounting
