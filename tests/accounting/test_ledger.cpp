#include "accounting/ledger.hpp"

#include <gtest/gtest.h>

#include "hpcsim/simulator.hpp"
#include "testing/helpers.hpp"
#include "util/error.hpp"

namespace greenhpc::accounting {
namespace {

using greenhpc::testing::constant_trace;
using greenhpc::testing::GreedyScheduler;
using greenhpc::testing::rigid_job;
using greenhpc::testing::small_cluster;
using greenhpc::testing::square_trace;

hpcsim::SimulationResult run_project_jobs(const util::TimeSeries& trace, int jobs_count,
                                          const std::string& project) {
  std::vector<hpcsim::JobSpec> jobs;
  for (int i = 0; i < jobs_count; ++i) {
    auto j = rigid_job(i + 1, hours(0.5 * i), 2, hours(2.0));
    j.project = project;
    jobs.push_back(j);
  }
  hpcsim::Simulator::Config cfg;
  cfg.cluster = small_cluster(32);
  cfg.carbon_intensity = trace;
  hpcsim::Simulator sim(cfg, std::move(jobs));
  GreedyScheduler sched;
  return sim.run(sched);
}

TEST(Ledger, ChargesJobsAgainstGrant) {
  const auto trace = constant_trace(300.0, days(3.0));
  const auto result = run_project_jobs(trace, 5, "climate");
  ProjectLedger ledger(trace, PricingPolicy{.green_discount = 0.0});
  ledger.grant("climate", 100.0);
  ledger.charge_all(result.jobs);
  const auto& account = ledger.account("climate");
  EXPECT_EQ(account.jobs_charged, 5);
  EXPECT_EQ(account.jobs_rejected, 0);
  // 5 jobs x 2 nodes x 2h = 20 node-hours.
  EXPECT_NEAR(account.node_hours_billed, 20.0, 0.5);
  EXPECT_NEAR(account.node_hours_remaining(), 80.0, 0.5);
  EXPECT_GT(account.carbon_used.grams(), 0.0);
}

TEST(Ledger, RejectsWhenExhausted) {
  const auto trace = constant_trace(300.0, days(3.0));
  const auto result = run_project_jobs(trace, 6, "climate");
  ProjectLedger ledger(trace, PricingPolicy{.green_discount = 0.0});
  ledger.grant("climate", 10.0);  // only ~2.5 jobs' worth
  ledger.charge_all(result.jobs);
  const auto& account = ledger.account("climate");
  EXPECT_GT(account.jobs_charged, 0);
  EXPECT_GT(account.jobs_rejected, 0);
  EXPECT_EQ(account.jobs_charged + account.jobs_rejected, 6);
}

TEST(Ledger, GreenDiscountStretchesAllocation) {
  // Jobs running fully in green windows are billed at a discount, so the
  // same grant accepts more of them.
  const auto trace = square_trace(100.0, 500.0, hours(12.0), days(4.0));
  const auto result = run_project_jobs(trace, 10, "green");  // all < 12h: green phase
  ProjectLedger full_price(trace, PricingPolicy{.green_discount = 0.0,
                                                .green_quantile = 0.5});
  full_price.grant("green", 20.0);
  full_price.charge_all(result.jobs);
  ProjectLedger discounted(trace, PricingPolicy{.green_discount = 0.5,
                                                .green_quantile = 0.5});
  discounted.grant("green", 20.0);
  discounted.charge_all(result.jobs);
  EXPECT_GT(discounted.account("green").jobs_charged,
            full_price.account("green").jobs_charged);
}

TEST(Ledger, CarbonAllowanceCapsProjects) {
  const auto trace = constant_trace(300.0, days(3.0));
  const auto result = run_project_jobs(trace, 6, "capped");
  ProjectLedger ledger(trace, PricingPolicy{});
  // First job emits ~0.5 kg; allow only ~2 jobs' worth of carbon.
  const Carbon per_job = result.jobs[0].carbon;
  ledger.grant("capped", 1e6, per_job * 2.1);
  ledger.charge_all(result.jobs);
  const auto& account = ledger.account("capped");
  EXPECT_LE(account.jobs_charged, 3);
  EXPECT_GT(account.jobs_rejected, 0);
}

TEST(Ledger, StatementContainsKeyFigures) {
  const auto trace = constant_trace(300.0, days(3.0));
  const auto result = run_project_jobs(trace, 3, "fusion");
  ProjectLedger ledger(trace, PricingPolicy{});
  ledger.grant("fusion", 50.0, tonnes_co2(1.0));
  ledger.charge_all(result.jobs);
  const std::string st = ledger.statement("fusion");
  EXPECT_NE(st.find("Project fusion"), std::string::npos);
  EXPECT_NE(st.find("node-hours"), std::string::npos);
  EXPECT_NE(st.find("kgCO2e"), std::string::npos);
  EXPECT_NE(st.find("charged"), std::string::npos);
}

TEST(Ledger, AccountsSortedAndComplete) {
  const auto trace = constant_trace(300.0, days(1.0));
  ProjectLedger ledger(trace, PricingPolicy{});
  ledger.grant("zeta", 10.0);
  ledger.grant("alpha", 10.0);
  const auto accounts = ledger.accounts();
  ASSERT_EQ(accounts.size(), 2u);
  EXPECT_EQ(accounts[0].project, "alpha");
  EXPECT_EQ(accounts[1].project, "zeta");
}

TEST(Ledger, Preconditions) {
  const auto trace = constant_trace(300.0, days(1.0));
  ProjectLedger ledger(trace, PricingPolicy{});
  ledger.grant("p", 10.0);
  EXPECT_THROW(ledger.grant("p", 10.0), greenhpc::InvalidArgument);   // duplicate
  EXPECT_THROW(ledger.grant("q", 0.0), greenhpc::InvalidArgument);    // empty grant
  EXPECT_THROW((void)ledger.account("missing"), greenhpc::InvalidArgument);
  hpcsim::JobRecord incomplete;
  incomplete.spec = rigid_job(1, seconds(0.0), 2, hours(1.0));
  incomplete.spec.project = "p";
  incomplete.completed = false;
  EXPECT_THROW((void)ledger.charge(incomplete), greenhpc::InvalidArgument);
}

}  // namespace
}  // namespace greenhpc::accounting
