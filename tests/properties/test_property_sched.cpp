// Property-based sweeps over every scheduling policy: liveness (no job is
// starved), legality (allocations within spec), and determinism must hold
// for each scheduler x workload combination.

#include <gtest/gtest.h>

#include <memory>

#include "carbon/forecast.hpp"
#include "carbon/grid_model.hpp"
#include "hpcsim/simulator.hpp"
#include "hpcsim/workload.hpp"
#include "sched/carbon_aware.hpp"
#include "sched/conservative.hpp"
#include "sched/decorators.hpp"
#include "sched/easy_backfill.hpp"
#include "sched/fcfs.hpp"
#include "testing/helpers.hpp"

namespace greenhpc::sched {
namespace {

enum class Policy {
  Fcfs,
  Easy,
  EasyMold,
  Conservative,
  CarbonEasy,
  CarbonEasyCkpt,
  EasyMalleable,
};

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::Fcfs: return "fcfs";
    case Policy::Easy: return "easy";
    case Policy::EasyMold: return "easy_mold";
    case Policy::Conservative: return "conservative";
    case Policy::CarbonEasy: return "carbon_easy";
    case Policy::CarbonEasyCkpt: return "carbon_easy_ckpt";
    case Policy::EasyMalleable: return "easy_malleable";
  }
  return "?";
}

std::unique_ptr<hpcsim::SchedulingPolicy> make_policy(Policy p) {
  switch (p) {
    case Policy::Fcfs:
      return std::make_unique<FcfsScheduler>();
    case Policy::Easy:
      return std::make_unique<EasyBackfillScheduler>();
    case Policy::EasyMold:
      return std::make_unique<EasyBackfillScheduler>(true);
    case Policy::Conservative:
      return std::make_unique<ConservativeBackfillScheduler>();
    case Policy::CarbonEasy: {
      CarbonAwareEasyScheduler::Config cfg;
      cfg.max_hold = hours(6.0);
      return std::make_unique<CarbonAwareEasyScheduler>(
          cfg, std::make_shared<carbon::PersistenceForecaster>());
    }
    case Policy::CarbonEasyCkpt: {
      CarbonAwareEasyScheduler::Config cfg;
      cfg.max_hold = hours(6.0);
      return std::make_unique<CheckpointDecorator>(
          CheckpointDecorator::Config{},
          std::make_unique<CarbonAwareEasyScheduler>(
              cfg, std::make_shared<carbon::PersistenceForecaster>()));
    }
    case Policy::EasyMalleable:
      return std::make_unique<MalleableDecorator>(
          MalleableDecorator::Config{}, std::make_unique<EasyBackfillScheduler>());
  }
  return nullptr;
}

struct SchedCase {
  Policy policy;
  std::uint64_t seed;
};

class SchedulerProperties : public ::testing::TestWithParam<SchedCase> {
 protected:
  hpcsim::SimulationResult run() const {
    hpcsim::WorkloadConfig wl;
    wl.job_count = 70;
    wl.span = days(2.0);
    wl.max_job_nodes = 16;
    wl.malleable_fraction = 0.2;
    wl.moldable_fraction = 0.2;
    wl.checkpointable_fraction = 0.4;
    const auto jobs = hpcsim::WorkloadGenerator(wl, GetParam().seed).generate();
    hpcsim::Simulator::Config cfg;
    cfg.cluster = greenhpc::testing::small_cluster(32);
    cfg.cluster.tick = minutes(2.0);
    carbon::GridModel grid(carbon::Region::Germany, GetParam().seed);
    cfg.carbon_intensity = grid.generate(seconds(0.0), days(6.0), minutes(30.0));
    hpcsim::Simulator sim(cfg, jobs);
    auto policy = make_policy(GetParam().policy);
    return sim.run(*policy);
  }
};

TEST_P(SchedulerProperties, NoJobIsStarved) {
  const auto r = run();
  EXPECT_EQ(r.completed_jobs, 70);
}

TEST_P(SchedulerProperties, AllocationsLegal) {
  const auto r = run();
  for (const auto& j : r.jobs) {
    EXPECT_GE(j.start, j.submit) << j.spec.id;
    EXPECT_GT(j.finish, j.start) << j.spec.id;
    EXPECT_GE(j.energy.joules(), 0.0) << j.spec.id;
  }
}

TEST_P(SchedulerProperties, DeterministicAcrossRuns) {
  const auto a = run();
  const auto b = run();
  EXPECT_DOUBLE_EQ(a.total_carbon.grams(), b.total_carbon.grams());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].finish, b.jobs[i].finish) << a.jobs[i].spec.id;
  }
}

TEST_P(SchedulerProperties, EnergyDecomposes) {
  const auto r = run();
  Energy job_total{};
  for (const auto& j : r.jobs) job_total += j.energy;
  EXPECT_NEAR(r.total_energy.joules(), (job_total + r.idle_energy).joules(),
              1e-6 * r.total_energy.joules());
}

std::vector<SchedCase> all_cases() {
  std::vector<SchedCase> cases;
  for (Policy p : {Policy::Fcfs, Policy::Easy, Policy::EasyMold, Policy::Conservative,
                   Policy::CarbonEasy, Policy::CarbonEasyCkpt, Policy::EasyMalleable}) {
    for (std::uint64_t seed : {3ull, 19ull}) cases.push_back({p, seed});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SchedulerProperties, ::testing::ValuesIn(all_cases()),
                         [](const ::testing::TestParamInfo<SchedCase>& pinfo) {
                           return std::string(policy_name(pinfo.param.policy)) + "_s" +
                                  std::to_string(pinfo.param.seed);
                         });

}  // namespace
}  // namespace greenhpc::sched
