// Property-based sweeps over the grid model and forecasters: invariants
// that must hold for every (region, seed) pair.

#include <gtest/gtest.h>

#include <tuple>

#include "carbon/forecast.hpp"
#include "carbon/green_periods.hpp"
#include "carbon/grid_model.hpp"

namespace greenhpc::carbon {
namespace {

using GridCase = std::tuple<Region, std::uint64_t>;

class GridProperties : public ::testing::TestWithParam<GridCase> {
 protected:
  util::TimeSeries trace(IntensityKind kind = IntensityKind::Average) const {
    GridModel model(std::get<0>(GetParam()), std::get<1>(GetParam()));
    return model.generate(seconds(0.0), days(21.0), hours(1.0), kind);
  }
};

TEST_P(GridProperties, BoundsRespected) {
  const RegionTraits& t = traits(std::get<0>(GetParam()));
  for (double v : trace().values()) {
    EXPECT_GE(v, t.floor_gkwh);
    EXPECT_LE(v, t.cap_gkwh);
  }
}

TEST_P(GridProperties, MarginalAtLeastAverageInMean) {
  const double avg = trace(IntensityKind::Average).summary().mean;
  const double marg = trace(IntensityKind::Marginal).summary().mean;
  EXPECT_GE(marg, avg * 0.999);
}

TEST_P(GridProperties, MeanWithinRegionBand) {
  const RegionTraits& t = traits(std::get<0>(GetParam()));
  const double mean = trace().summary().mean;
  EXPECT_GT(mean, t.mean_gkwh * 0.75);
  EXPECT_LT(mean, t.mean_gkwh * 1.25);
}

TEST_P(GridProperties, GreenThresholdSplitsTraceConsistently) {
  const auto ts = trace();
  for (double q : {0.1, 0.25, 0.5, 0.75}) {
    const double threshold = green_threshold(ts, q);
    const double fraction = green_fraction(ts, threshold);
    EXPECT_NEAR(fraction, q, 0.05) << "quantile " << q;
  }
}

TEST_P(GridProperties, GreenWindowsPartitionGreenTime) {
  const auto ts = trace();
  const double threshold = green_threshold(ts, 0.3);
  const auto windows = find_green_windows(ts, threshold);
  double window_time = 0.0;
  for (const auto& w : windows) window_time += w.length().seconds();
  const double green_time = green_fraction(ts, threshold) *
                            (ts.end() - ts.start()).seconds();
  EXPECT_NEAR(window_time, green_time, 1.0);
  // Windows are disjoint and ordered.
  for (std::size_t i = 1; i < windows.size(); ++i) {
    EXPECT_GE(windows[i].start, windows[i - 1].end);
  }
}

TEST_P(GridProperties, TemporalStructurePresent) {
  // Hour-resolution traces must show positive short-lag correlation (OU
  // weather regimes persist across hours).
  const auto ts = trace();
  EXPECT_GT(ts.autocorrelation(1), 0.5);
  EXPECT_GT(ts.autocorrelation(6), 0.2);
}

TEST_P(GridProperties, OracleIsTheBestForecaster) {
  const auto ts = trace();
  const OracleForecaster oracle(ts);
  const PersistenceForecaster persistence;
  const HarmonicForecaster harmonic(days(3.0));
  for (double h : {2.0, 12.0}) {
    const double e_o = evaluate_mape(oracle, ts, days(4.0), hours(h));
    const double e_p = evaluate_mape(persistence, ts, days(4.0), hours(h));
    const double e_h = evaluate_mape(harmonic, ts, days(4.0), hours(h));
    EXPECT_LE(e_o, e_p) << "horizon " << h;
    EXPECT_LE(e_o, e_h) << "horizon " << h;
  }
}

TEST_P(GridProperties, HarmonicBeatsPersistenceShortHorizon) {
  // The anchored harmonic fit should win at short horizons on every
  // region (it tracks both level and shape).
  const auto ts = trace();
  const PersistenceForecaster persistence;
  const HarmonicForecaster harmonic(days(3.0));
  const double e_p = evaluate_mape(persistence, ts, days(4.0), hours(1.0));
  const double e_h = evaluate_mape(harmonic, ts, days(4.0), hours(1.0));
  EXPECT_LT(e_h, e_p);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GridProperties,
    ::testing::Combine(::testing::Values(Region::France, Region::Finland,
                                         Region::Germany, Region::Poland,
                                         Region::UnitedKingdom, Region::Norway),
                       ::testing::Values(11ull, 77ull)),
    [](const ::testing::TestParamInfo<GridCase>& pinfo) {
      return std::string(traits(std::get<0>(pinfo.param)).code) + "_s" +
             std::to_string(std::get<1>(pinfo.param));
    });

}  // namespace
}  // namespace greenhpc::carbon
