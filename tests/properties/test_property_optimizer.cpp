// Property-based sweeps over the procurement optimizer: feasibility and
// near-optimality against exhaustive ground truth on randomized catalogs.

#include <gtest/gtest.h>

#include "procure/optimizer.hpp"
#include "util/rng.hpp"

namespace greenhpc::procure {
namespace {

struct OptimizerCase {
  std::uint64_t seed;
  int types;
  double cost_budget;
  double power_kw;
  double carbon_t;
};

class OptimizerProperties : public ::testing::TestWithParam<OptimizerCase> {
 protected:
  std::vector<NodeBlueprint> random_catalog() const {
    util::Rng rng(GetParam().seed);
    std::vector<NodeBlueprint> catalog;
    for (int i = 0; i < GetParam().types; ++i) {
      NodeBlueprint b;
      b.name = "type" + std::to_string(i);
      b.perf_tflops = rng.uniform(1.0, 50.0);
      b.power = watts(rng.uniform(150.0, 3500.0));
      b.embodied = kilograms_co2(rng.uniform(100.0, 2500.0));
      b.cost_keur = rng.uniform(5.0, 250.0);
      catalog.push_back(std::move(b));
    }
    return catalog;
  }
  ProcurementConstraints constraints() const {
    ProcurementConstraints c;
    c.cost_budget_keur = GetParam().cost_budget;
    c.power_limit = kilowatts(GetParam().power_kw);
    c.embodied_budget = tonnes_co2(GetParam().carbon_t);
    c.max_nodes = 12;
    return c;
  }
};

TEST_P(OptimizerProperties, HeuristicAlwaysFeasible) {
  const ProcurementOptimizer opt(random_catalog());
  const auto plan = opt.optimize(constraints());
  EXPECT_TRUE(plan.feasible(opt.catalog(), constraints()));
}

TEST_P(OptimizerProperties, HeuristicNearExhaustiveOptimum) {
  const ProcurementOptimizer opt(random_catalog());
  const auto heuristic = opt.optimize(constraints());
  const auto exact = opt.optimize_exhaustive(constraints(), 12);
  EXPECT_GE(heuristic.perf_tflops(opt.catalog()),
            0.85 * exact.perf_tflops(opt.catalog()));
}

TEST_P(OptimizerProperties, MonotoneInEveryBudget) {
  // Loosening any single budget never reduces achievable performance.
  const ProcurementOptimizer opt(random_catalog());
  const auto base = opt.optimize(constraints());
  const double base_perf = base.perf_tflops(opt.catalog());

  auto loosened = constraints();
  loosened.cost_budget_keur *= 2.0;
  EXPECT_GE(opt.optimize(loosened).perf_tflops(opt.catalog()), base_perf - 1e-9);

  loosened = constraints();
  loosened.power_limit = loosened.power_limit * 2.0;
  EXPECT_GE(opt.optimize(loosened).perf_tflops(opt.catalog()), base_perf - 1e-9);

  loosened = constraints();
  loosened.embodied_budget = loosened.embodied_budget * 2.0;
  EXPECT_GE(opt.optimize(loosened).perf_tflops(opt.catalog()), base_perf - 1e-9);
}

TEST_P(OptimizerProperties, ZeroBudgetYieldsEmptyPlan) {
  const ProcurementOptimizer opt(random_catalog());
  auto c = constraints();
  c.cost_budget_keur = 0.0;
  const auto plan = opt.optimize(c);
  EXPECT_EQ(plan.total_nodes(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OptimizerProperties,
    ::testing::Values(OptimizerCase{1, 3, 400.0, 8.0, 6.0},
                      OptimizerCase{2, 3, 150.0, 3.0, 2.0},
                      OptimizerCase{3, 4, 800.0, 20.0, 12.0},
                      OptimizerCase{4, 4, 250.0, 5.0, 1.5},
                      OptimizerCase{5, 2, 600.0, 12.0, 8.0},
                      OptimizerCase{6, 5, 500.0, 10.0, 5.0}),
    [](const ::testing::TestParamInfo<OptimizerCase>& pinfo) {
      return "seed" + std::to_string(pinfo.param.seed) + "_t" +
             std::to_string(pinfo.param.types);
    });

}  // namespace
}  // namespace greenhpc::procure
