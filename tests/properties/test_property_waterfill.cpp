// Property-based sweeps over hierarchical power distribution: the
// water-filling invariants must hold for every tree shape and budget.

#include <gtest/gtest.h>

#include "powerstack/budget_tree.hpp"
#include "util/rng.hpp"

namespace greenhpc::powerstack {
namespace {

struct TreeCase {
  std::uint64_t seed;
  int jobs;
  int nodes_per_job;
  int gpus;
  double budget_fraction;  // of the tree's aggregate max
};

class WaterFillProperties : public ::testing::TestWithParam<TreeCase> {
 protected:
  BudgetNode tree() const {
    const TreeCase& c = GetParam();
    ComponentBounds bounds;
    bounds.gpus_per_node = c.gpus;
    return make_site_tree(c.jobs, c.nodes_per_job, bounds);
  }
  Power budget() const {
    return tree().aggregate_max() * GetParam().budget_fraction;
  }
};

TEST_P(WaterFillProperties, LeavesSumToRoot) {
  const auto root = tree();
  const auto assignments = distribute(root, budget());
  double leaf_sum = 0.0;
  for (const auto& a : assignments) {
    if (a.is_leaf) leaf_sum += a.budget.watts();
  }
  EXPECT_NEAR(leaf_sum, assignments[0].budget.watts(),
              1e-6 * std::max(1.0, leaf_sum));
}

TEST_P(WaterFillProperties, EveryLeafWithinItsBounds) {
  const auto root = tree();
  const auto assignments = distribute(root, budget());
  ComponentBounds b;
  b.gpus_per_node = GetParam().gpus;
  for (const auto& a : assignments) {
    if (!a.is_leaf) continue;
    EXPECT_GE(a.budget.watts(), 0.0) << a.path;
    double max_w = b.dram_max.watts();
    if (a.path.find("/cpu") != std::string::npos) max_w = b.cpu_max.watts();
    if (a.path.find("/gpu") != std::string::npos) max_w = b.gpu_max.watts();
    EXPECT_LE(a.budget.watts(), max_w + 1e-6) << a.path;
  }
}

TEST_P(WaterFillProperties, MonotoneInBudget) {
  // Growing the root budget never shrinks any leaf's share.
  const auto root = tree();
  const auto small = distribute(root, budget() * 0.7);
  const auto large = distribute(root, budget());
  ASSERT_EQ(small.size(), large.size());
  for (std::size_t i = 0; i < small.size(); ++i) {
    EXPECT_LE(small[i].budget.watts(), large[i].budget.watts() + 1e-6)
        << small[i].path;
  }
}

TEST_P(WaterFillProperties, SiblingFairnessUnderEqualWeights) {
  // Jobs are identical subtrees with equal weights: their assignments must
  // match exactly.
  const auto root = tree();
  const auto assignments = distribute(root, budget());
  double first_job_budget = -1.0;
  for (const auto& a : assignments) {
    // Depth-1 nodes: "system/jobK".
    if (a.path.rfind("system/job", 0) == 0 &&
        a.path.find('/', 7) == a.path.rfind('/')) {
      if (first_job_budget < 0.0) {
        first_job_budget = a.budget.watts();
      } else {
        EXPECT_NEAR(a.budget.watts(), first_job_budget, 1e-6);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WaterFillProperties,
    ::testing::Values(TreeCase{1, 2, 2, 0, 0.5}, TreeCase{2, 4, 4, 0, 0.8},
                      TreeCase{3, 3, 2, 2, 0.3}, TreeCase{4, 8, 2, 4, 0.6},
                      TreeCase{5, 2, 8, 1, 0.95}, TreeCase{6, 6, 3, 0, 0.15},
                      TreeCase{7, 1, 1, 4, 0.5}, TreeCase{8, 5, 5, 2, 1.0}),
    [](const ::testing::TestParamInfo<TreeCase>& pinfo) {
      return "j" + std::to_string(pinfo.param.jobs) + "_n" +
             std::to_string(pinfo.param.nodes_per_job) + "_g" +
             std::to_string(pinfo.param.gpus) + "_b" +
             std::to_string(static_cast<int>(pinfo.param.budget_fraction * 100));
    });

}  // namespace
}  // namespace greenhpc::powerstack
