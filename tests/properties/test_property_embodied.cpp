// Property-based sweeps over the embodied model: monotonicity and
// composition invariants across process nodes and fab-grid intensities.

#include <gtest/gtest.h>

#include <tuple>

#include "embodied/act_model.hpp"
#include "embodied/components.hpp"
#include "embodied/systems.hpp"

namespace greenhpc::embodied {
namespace {

using NodeGridCase = std::tuple<ProcessNode, double /*fab grid g/kWh*/>;

class ActProperties : public ::testing::TestWithParam<NodeGridCase> {
 protected:
  ActModel model() const {
    return ActModel(
        ActModel::Config{.fab_grid = grams_per_kwh(std::get<1>(GetParam()))});
  }
  ProcessNode node() const { return std::get<0>(GetParam()); }
};

TEST_P(ActProperties, YieldInUnitIntervalAndDecreasing) {
  const auto m = model();
  double prev = 1.1;
  for (double area : {25.0, 100.0, 400.0, 800.0}) {
    const double y = m.die_yield(area, node());
    EXPECT_GT(y, 0.0);
    EXPECT_LE(y, 1.0);
    EXPECT_LT(y, prev);
    prev = y;
  }
}

TEST_P(ActProperties, CarbonStrictlyIncreasingInArea) {
  const auto m = model();
  double prev = 0.0;
  for (double area : {25.0, 100.0, 400.0, 800.0}) {
    const double c = m.logic_die(area, node()).grams();
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST_P(ActProperties, SuperlinearInAreaFromYield) {
  const auto m = model();
  const double small = m.logic_die(100.0, node()).grams();
  const double large = m.logic_die(400.0, node()).grams();
  EXPECT_GT(large, 4.0 * small);
}

TEST_P(ActProperties, MemoryLinearInCapacity) {
  const auto m = model();
  for (auto type : {DramType::DDR4, DramType::DDR5, DramType::HBM2e}) {
    const double unit = m.dram(1.0, type).grams();
    EXPECT_NEAR(m.dram(64.0, type).grams(), 64.0 * unit, 1e-6 * 64.0 * unit);
  }
}

TEST_P(ActProperties, ProcessorEmbodiedDecomposes) {
  // processor_embodied == sum of chiplets + packaging + HBM + overhead.
  const auto m = model();
  ProcessorSpec spec;
  spec.name = "probe";
  spec.chiplets = {{74.0, node(), 4}, {200.0, node(), 1}};
  spec.substrate_cm2 = 30.0;
  spec.interposer_cm2 = 5.0;
  spec.hbm_gb = 16.0;
  spec.module_overhead_kg = 12.0;
  const double expected = 4.0 * m.logic_die(74.0, node()).grams() +
                          m.logic_die(200.0, node()).grams() +
                          m.packaging(5, 30.0, 5.0).grams() +
                          m.dram(16.0, DramType::HBM2e).grams() + 12000.0;
  EXPECT_NEAR(processor_embodied(m, spec).grams(), expected, 1e-6 * expected);
}

TEST_P(ActProperties, DirtierFabNeverCheaper) {
  const auto clean = ActModel(ActModel::Config{.fab_grid = grams_per_kwh(100.0)});
  const auto m = model();
  if (std::get<1>(GetParam()) >= 100.0) {
    EXPECT_GE(m.logic_die(300.0, node()).grams(),
              clean.logic_die(300.0, node()).grams());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ActProperties,
    ::testing::Combine(::testing::Values(ProcessNode::N28, ProcessNode::N14,
                                         ProcessNode::N10, ProcessNode::N7,
                                         ProcessNode::N5, ProcessNode::N3),
                       ::testing::Values(100.0, 620.0, 900.0)),
    [](const ::testing::TestParamInfo<NodeGridCase>& pinfo) {
      return std::string(node_name(std::get<0>(pinfo.param))) + "_ci" +
             std::to_string(static_cast<int>(std::get<1>(pinfo.param)));
    });

// Fig. 1 shares must be stable across fab-grid assumptions: the
// *relative* composition is the figure's message, and both numerator and
// denominator scale together.
class Fig1Stability : public ::testing::TestWithParam<double> {};

TEST_P(Fig1Stability, SharesRobustToFabGrid) {
  const ActModel m(ActModel::Config{.fab_grid = grams_per_kwh(GetParam())});
  EXPECT_NEAR(embodied_breakdown(m, juwels_booster()).memory_storage_share(), 0.435,
              0.06);
  EXPECT_NEAR(embodied_breakdown(m, supermuc_ng()).memory_storage_share(), 0.596, 0.06);
  EXPECT_NEAR(embodied_breakdown(m, hawk()).memory_storage_share(), 0.555, 0.06);
}

INSTANTIATE_TEST_SUITE_P(FabGrids, Fig1Stability,
                         ::testing::Values(400.0, 500.0, 620.0, 750.0));

}  // namespace
}  // namespace greenhpc::embodied
