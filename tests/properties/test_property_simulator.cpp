// Property-based sweeps over the simulator: invariants that must hold for
// every workload seed, cluster size and scheduling policy.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "hpcsim/simulator.hpp"
#include "hpcsim/workload.hpp"
#include "sched/easy_backfill.hpp"
#include "sched/fcfs.hpp"
#include "testing/helpers.hpp"

namespace greenhpc::hpcsim {
namespace {

using greenhpc::testing::constant_trace;

struct SimCase {
  std::uint64_t seed;
  int nodes;
  bool easy;  // EASY vs FCFS
};

class SimulatorProperties : public ::testing::TestWithParam<SimCase> {
 protected:
  SimulationResult run() const {
    const SimCase& c = GetParam();
    WorkloadConfig wl;
    wl.job_count = 80;
    wl.span = days(2.0);
    wl.max_job_nodes = c.nodes / 2;
    wl.malleable_fraction = 0.2;
    wl.checkpointable_fraction = 0.3;
    const auto jobs = WorkloadGenerator(wl, c.seed).generate();

    Simulator::Config cfg;
    cfg.cluster = greenhpc::testing::small_cluster(c.nodes);
    cfg.carbon_intensity = constant_trace(250.0, days(1.0));  // clamps beyond
    Simulator sim(cfg, jobs);
    if (c.easy) {
      sched::EasyBackfillScheduler sched;
      return sim.run(sched);
    }
    sched::FcfsScheduler sched;
    return sim.run(sched);
  }
};

TEST_P(SimulatorProperties, AllJobsComplete) {
  const auto r = run();
  EXPECT_EQ(r.completed_jobs, 80);
  for (const auto& j : r.jobs) EXPECT_TRUE(j.completed) << j.spec.id;
}

TEST_P(SimulatorProperties, EnergyDecomposes) {
  // Total energy == sum of job energies + idle-node energy, exactly (the
  // engine integrates both from the same tick loop).
  const auto r = run();
  Energy job_total{};
  for (const auto& j : r.jobs) job_total += j.energy;
  EXPECT_NEAR(r.total_energy.joules(), (job_total + r.idle_energy).joules(),
              1e-6 * r.total_energy.joules());
}

TEST_P(SimulatorProperties, CarbonMatchesConstantIntensity) {
  // With a constant 250 g/kWh trace, carbon == energy * 250 exactly.
  const auto r = run();
  EXPECT_NEAR(r.total_carbon.grams(), r.total_energy.kilowatt_hours() * 250.0,
              1e-6 * r.total_carbon.grams());
  for (const auto& j : r.jobs) {
    EXPECT_NEAR(j.carbon.grams(), j.energy.kilowatt_hours() * 250.0,
                1e-6 * std::max(1.0, j.carbon.grams()));
  }
}

TEST_P(SimulatorProperties, AllocationNeverExceedsCluster) {
  const auto r = run();
  for (double busy : r.busy_nodes.values()) {
    EXPECT_LE(busy, static_cast<double>(GetParam().nodes) + 1e-9);
    EXPECT_GE(busy, 0.0);
  }
}

TEST_P(SimulatorProperties, CausalityAndOrdering) {
  const auto r = run();
  for (const auto& j : r.jobs) {
    EXPECT_GE(j.start, j.submit) << j.spec.id;
    EXPECT_GT(j.finish, j.start) << j.spec.id;
    // A job can never finish faster than its ideal runtime.
    EXPECT_GE((j.finish - j.start).seconds() * (1.0 + 1e-9),
              j.spec.runtime.seconds() *
                  std::pow(static_cast<double>(j.spec.nodes_used) /
                               std::max(j.spec.nodes_used, j.spec.max_nodes),
                           j.spec.scale_gamma))
        << j.spec.id;
  }
}

TEST_P(SimulatorProperties, PowerSeriesBounded) {
  const auto r = run();
  const auto cluster = greenhpc::testing::small_cluster(GetParam().nodes);
  for (double p : r.system_power.values()) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, cluster.max_power().watts() * (1.0 + 1e-9));
  }
}

TEST_P(SimulatorProperties, DeterministicRepetition) {
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  EXPECT_DOUBLE_EQ(a.total_carbon.grams(), b.total_carbon.grams());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].finish, b.jobs[i].finish);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimulatorProperties,
    ::testing::Values(SimCase{1, 16, true}, SimCase{2, 16, false},
                      SimCase{3, 32, true}, SimCase{4, 32, false},
                      SimCase{5, 64, true}, SimCase{6, 64, false},
                      SimCase{7, 24, true}, SimCase{8, 48, true}),
    [](const ::testing::TestParamInfo<SimCase>& pinfo) {
      return "seed" + std::to_string(pinfo.param.seed) + "_n" +
             std::to_string(pinfo.param.nodes) + (pinfo.param.easy ? "_easy" : "_fcfs");
    });

}  // namespace
}  // namespace greenhpc::hpcsim
