// Property-based sweeps over the facility stack: PUE, weather and
// heat-reuse invariants across regions and cooling technologies.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "carbon/grid_model.hpp"
#include "facility/facility_model.hpp"

namespace greenhpc::facility {
namespace {

using FacilityCase = std::tuple<carbon::Region, CoolingTechnology>;

class FacilityProperties : public ::testing::TestWithParam<FacilityCase> {
 protected:
  carbon::Region region() const { return std::get<0>(GetParam()); }
  CoolingTechnology tech() const { return std::get<1>(GetParam()); }

  FacilityResult evaluate_year() const {
    WeatherModel weather(region(), 7);
    const auto temp = weather.generate(seconds(0.0), days(365.0), hours(3.0));
    carbon::GridModel grid(region(), 7);
    const auto ci = grid.generate(seconds(0.0), days(365.0), hours(3.0));
    return evaluate_facility_constant(megawatts(2.0), seconds(0.0), days(365.0), temp,
                                      ci, CoolingModel(tech()), HeatReuseConfig{});
  }
};

TEST_P(FacilityProperties, PueWithinPhysicalBand) {
  const auto r = evaluate_year();
  EXPECT_GE(r.mean_pue, 1.0);
  EXPECT_LE(r.mean_pue, 2.0);
  EXPECT_GE(r.facility_energy.joules(), r.it_energy.joules());
}

TEST_P(FacilityProperties, EnergyAndCarbonConsistent) {
  const auto r = evaluate_year();
  // Facility energy = IT x mean PUE only approximately (PUE varies with
  // time), but must stay within the min/max PUE envelope.
  const double ratio = r.facility_energy.joules() / r.it_energy.joules();
  EXPECT_NEAR(ratio, r.mean_pue, 0.05);
  EXPECT_GT(r.gross_carbon.grams(), 0.0);
  EXPECT_GE(r.gross_carbon.grams(), r.net_carbon().grams());
}

TEST_P(FacilityProperties, ColdRegionsCoolCheaper) {
  // Any technology runs at most as expensive in Finland as in Spain.
  WeatherModel fi(carbon::Region::Finland, 3);
  WeatherModel es(carbon::Region::Spain, 3);
  const auto temp_fi = fi.generate(seconds(0.0), days(365.0), hours(3.0));
  const auto temp_es = es.generate(seconds(0.0), days(365.0), hours(3.0));
  const CoolingModel model(tech());
  EXPECT_LE(model.mean_pue(temp_fi), model.mean_pue(temp_es) + 1e-9);
}

TEST_P(FacilityProperties, ReuseCreditBoundedByDisplaceableHeat) {
  const auto r = evaluate_year();
  // Credit can never exceed all IT heat displacing gas heating.
  const Carbon ceiling = r.it_energy * grams_per_kwh(220.0);
  EXPECT_LE(r.reuse_credit.grams(), ceiling.grams() + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FacilityProperties,
    ::testing::Combine(::testing::Values(carbon::Region::Finland, carbon::Region::Germany,
                                         carbon::Region::Spain, carbon::Region::Norway),
                       ::testing::Values(CoolingTechnology::AirCooled,
                                         CoolingTechnology::ChilledWater,
                                         CoolingTechnology::WarmWater)),
    [](const ::testing::TestParamInfo<FacilityCase>& pinfo) {
      std::string name = std::string(carbon::traits(std::get<0>(pinfo.param)).code) + "_" +
                         cooling_name(std::get<1>(pinfo.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace greenhpc::facility
