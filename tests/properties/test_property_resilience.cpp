// Property: resilience is deterministic end to end. Identical
// resilience::FaultModel seeds yield bit-identical failure schedules, and
// identical (workload, faults, feed) configurations yield bit-identical
// SimulationResult metrics — across many random configurations.

#include <gtest/gtest.h>

#include "hpcsim/simulator.hpp"
#include "hpcsim/workload.hpp"
#include "resilience/checkpoint_policy.hpp"
#include "resilience/degraded_feed.hpp"
#include "resilience/fault_model.hpp"
#include "testing/helpers.hpp"
#include "util/rng.hpp"

namespace greenhpc {
namespace {

using greenhpc::testing::GreedyScheduler;
using greenhpc::testing::constant_trace;

TEST(PropertyResilience, SameSeedSameFailureSchedule) {
  util::Rng meta(0xdecade);
  for (int trial = 0; trial < 25; ++trial) {
    resilience::FaultModelConfig cfg;
    cfg.nodes = static_cast<int>(meta.uniform_int(1, 128));
    cfg.horizon = days(meta.uniform(1.0, 40.0));
    cfg.node_mtbf = hours(meta.uniform(10.0, 2000.0));
    cfg.weibull_shape = meta.uniform(0.6, 2.5);
    cfg.mean_repair = hours(meta.uniform(0.5, 8.0));
    cfg.age_years = meta.uniform(0.0, 10.0);
    cfg.age_acceleration = meta.uniform(0.0, 0.3);
    cfg.seed = meta.next_u64();

    const auto a = resilience::FaultModel(cfg).schedule();
    const auto b = resilience::FaultModel(cfg).schedule();
    ASSERT_EQ(a.size(), b.size()) << "trial " << trial;
    for (std::size_t i = 0; i < a.size(); ++i) {
      // Bit-identical, not approximately equal.
      ASSERT_EQ(a[i].time.seconds(), b[i].time.seconds());
      ASSERT_EQ(a[i].nodes, b[i].nodes);
      ASSERT_EQ(a[i].repair.seconds(), b[i].repair.seconds());
    }
  }
}

TEST(PropertyResilience, DifferentSeedsDifferentSchedules) {
  resilience::FaultModelConfig cfg;
  cfg.nodes = 32;
  cfg.node_mtbf = hours(200.0);
  cfg.seed = 1;
  const auto a = resilience::FaultModel(cfg).schedule();
  cfg.seed = 2;
  const auto b = resilience::FaultModel(cfg).schedule();
  ASSERT_FALSE(a.empty());
  bool differs = a.size() != b.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].time.seconds() != b[i].time.seconds();
  }
  EXPECT_TRUE(differs);
}

TEST(PropertyResilience, FaultedRunsAreBitReproducible) {
  util::Rng meta(0x4e940);
  for (int trial = 0; trial < 8; ++trial) {
    const std::uint64_t seed = meta.next_u64();

    auto run_once = [&](std::uint64_t s) {
      hpcsim::WorkloadConfig wl;
      wl.job_count = 60;
      wl.span = days(1.0);
      wl.max_job_nodes = 8;
      wl.runtime_mean = hours(2.0);
      wl.runtime_max = hours(8.0);
      wl.checkpointable_fraction = 0.5;
      auto jobs = hpcsim::WorkloadGenerator(wl, s).generate();

      resilience::FaultModelConfig fm;
      fm.nodes = 16;
      fm.node_mtbf = hours(100.0);
      fm.horizon = days(10.0);
      fm.seed = s ^ 0xfa17;

      hpcsim::Simulator::Config cfg;
      cfg.cluster = greenhpc::testing::small_cluster(16);
      cfg.carbon_intensity = constant_trace(250.0, days(10.0));
      cfg.faults = resilience::FaultModel(fm).injection();

      resilience::DegradedFeedConfig feed_cfg;
      feed_cfg.outage_fraction = 0.25;
      feed_cfg.seed = s;
      resilience::DegradedFeed feed(feed_cfg, days(10.0));
      cfg.feed = &feed;

      GreedyScheduler inner;
      resilience::PeriodicCheckpointPolicy sched(inner,
                                                 {.node_mtbf = hours(100.0)});
      return hpcsim::Simulator(cfg, jobs).run(sched);
    };

    const auto a = run_once(seed);
    const auto b = run_once(seed);

    ASSERT_EQ(a.makespan.seconds(), b.makespan.seconds()) << "trial " << trial;
    ASSERT_EQ(a.total_energy.joules(), b.total_energy.joules());
    ASSERT_EQ(a.total_carbon.grams(), b.total_carbon.grams());
    ASSERT_EQ(a.node_failures, b.node_failures);
    ASSERT_EQ(a.job_failures, b.job_failures);
    ASSERT_EQ(a.jobs_failed, b.jobs_failed);
    ASSERT_EQ(a.checkpoints_taken, b.checkpoints_taken);
    ASSERT_EQ(a.lost_node_seconds, b.lost_node_seconds);
    ASSERT_EQ(a.checkpoint_node_seconds, b.checkpoint_node_seconds);
    ASSERT_EQ(a.wasted_energy.joules(), b.wasted_energy.joules());
    ASSERT_EQ(a.wasted_carbon.grams(), b.wasted_carbon.grams());
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (std::size_t i = 0; i < a.jobs.size(); ++i) {
      ASSERT_EQ(a.jobs[i].finish.seconds(), b.jobs[i].finish.seconds());
      ASSERT_EQ(a.jobs[i].energy.joules(), b.jobs[i].energy.joules());
      ASSERT_EQ(a.jobs[i].failure_count, b.jobs[i].failure_count);
      ASSERT_EQ(a.jobs[i].checkpoint_count, b.jobs[i].checkpoint_count);
    }
  }
}

TEST(PropertyResilience, MetricsStayInPhysicalRanges) {
  util::Rng meta(0xbadfab);
  for (int trial = 0; trial < 10; ++trial) {
    hpcsim::WorkloadConfig wl;
    wl.job_count = 40;
    wl.span = days(1.0);
    wl.max_job_nodes = 8;
    wl.runtime_mean = hours(1.5);
    wl.runtime_max = hours(6.0);
    wl.checkpointable_fraction = meta.uniform(0.0, 1.0);
    auto jobs = hpcsim::WorkloadGenerator(wl, meta.next_u64()).generate();

    resilience::FaultModelConfig fm;
    fm.nodes = 16;
    fm.node_mtbf = hours(meta.uniform(20.0, 400.0));
    fm.horizon = days(8.0);
    fm.seed = meta.next_u64();

    hpcsim::Simulator::Config cfg;
    cfg.cluster = greenhpc::testing::small_cluster(16);
    cfg.carbon_intensity = constant_trace(250.0, days(8.0));
    cfg.faults = resilience::FaultModel(fm).injection(5);

    GreedyScheduler sched;
    const auto r = hpcsim::Simulator(cfg, jobs).run(sched);

    EXPECT_GE(r.goodput_fraction(), 0.0);
    EXPECT_LE(r.goodput_fraction(), 1.0);
    EXPECT_GE(r.checkpoint_overhead_share(), 0.0);
    EXPECT_GE(r.lost_node_seconds, 0.0);
    EXPECT_GE(r.wasted_energy.joules(), 0.0);
    EXPECT_GE(r.wasted_carbon.grams(), 0.0);
    EXPECT_LE(r.wasted_energy.joules(), r.total_energy.joules());
    // Every job ends in exactly one terminal state.
    int done = 0;
    for (const auto& j : r.jobs) {
      done += static_cast<int>(j.completed) + static_cast<int>(j.killed) +
              static_cast<int>(j.failed);
    }
    EXPECT_EQ(done, static_cast<int>(r.jobs.size()));
  }
}

}  // namespace
}  // namespace greenhpc
