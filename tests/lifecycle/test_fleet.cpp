#include "lifecycle/fleet.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace greenhpc::lifecycle {
namespace {

TEST(Fleet, Table1Verbatim) {
  // Paper, Table 1: "Recent modern HPC systems at LRZ".
  const auto fleet = lrz_fleet();
  ASSERT_EQ(fleet.size(), 5u);
  EXPECT_EQ(fleet[0].name, "SuperMUC");
  EXPECT_EQ(fleet[0].start_year, 2012);
  EXPECT_EQ(fleet[0].decommission_year, 2018);
  EXPECT_EQ(fleet[1].name, "SuperMUC Phase 2");
  EXPECT_EQ(fleet[1].start_year, 2015);
  EXPECT_EQ(fleet[1].decommission_year, 2019);
  EXPECT_EQ(fleet[2].name, "SuperMUC-NG");
  EXPECT_EQ(fleet[2].start_year, 2019);
  EXPECT_EQ(fleet[2].decommission_year, 2024);
  EXPECT_EQ(fleet[3].name, "SuperMUC-NG Phase 2");
  EXPECT_EQ(fleet[3].start_year, 2023);
  EXPECT_FALSE(fleet[3].decommission_year.has_value());
  EXPECT_EQ(fleet[4].name, "ExaMUC");
  EXPECT_EQ(fleet[4].start_year, 2025);
  EXPECT_FALSE(fleet[4].decommission_year.has_value());
}

TEST(Fleet, ServiceYears) {
  const SystemLifetime closed{"x", 2012, 2018};
  EXPECT_EQ(closed.service_years(2030), 6);
  const SystemLifetime open{"y", 2023, std::nullopt};
  EXPECT_EQ(open.service_years(2026), 3);
  const SystemLifetime future{"z", 2025, std::nullopt};
  EXPECT_EQ(future.service_years(2023), 0);
}

TEST(Fleet, RefreshCycleMatchesPaperRule) {
  // "hardware refresh cycles ... range between four and six years"; the
  // LRZ fleet's closed systems lived 4-6 years and starts are a few years
  // apart.
  const auto fleet = lrz_fleet();
  for (const auto& s : fleet) {
    if (s.decommission_year) {
      const int life = s.service_years(2026);
      EXPECT_GE(life, 4) << s.name;
      EXPECT_LE(life, 6) << s.name;
    }
  }
  const double refresh = mean_refresh_interval_years(fleet);
  EXPECT_GE(refresh, 2.0);
  EXPECT_LE(refresh, 6.0);
}

TEST(Fleet, AnnualEmbodiedAmortization) {
  EXPECT_NEAR(annual_embodied(tonnes_co2(3000.0), 6).tonnes(), 500.0, 1e-9);
  EXPECT_THROW((void)annual_embodied(tonnes_co2(1.0), 0), greenhpc::InvalidArgument);
}

ExtensionScenario scenario(double grid_g_per_kwh) {
  ExtensionScenario s;
  s.replacement_embodied = tonnes_co2(3000.0);
  s.replacement_lifetime_years = 6;
  s.old_power = megawatts(3.0);
  s.efficiency_gain = 0.35;
  s.grid = grams_per_kwh(grid_g_per_kwh);
  return s;
}

TEST(Extension, CleanGridFavorsExtension) {
  // At LRZ-like 20 g/kWh the deferred embodied dominates.
  const auto r = evaluate_extension(scenario(20.0), 2);
  EXPECT_GT(r.net_savings().grams(), 0.0);
  EXPECT_NEAR(r.avoided_embodied.tonnes(), 1000.0, 1e-6);
}

TEST(Extension, DirtyGridFavorsReplacement) {
  // In a coal grid the old system's inefficiency dwarfs the embodied
  // deferral.
  const auto r = evaluate_extension(scenario(1025.0), 2);
  EXPECT_LT(r.net_savings().grams(), 0.0);
}

TEST(Extension, BreakevenSeparatesRegimes) {
  const auto s = scenario(100.0);
  const CarbonIntensity breakeven = extension_breakeven_intensity(s);
  EXPECT_GT(breakeven.grams_per_kwh(), 0.0);
  // Just below breakeven extension wins; just above it loses.
  auto below = s;
  below.grid = grams_per_kwh(breakeven.grams_per_kwh() * 0.9);
  auto above = s;
  above.grid = grams_per_kwh(breakeven.grams_per_kwh() * 1.1);
  EXPECT_GT(evaluate_extension(below, 1).net_savings().grams(), 0.0);
  EXPECT_LT(evaluate_extension(above, 1).net_savings().grams(), 0.0);
}

TEST(Extension, ZeroYearsIsNeutral) {
  const auto r = evaluate_extension(scenario(200.0), 0);
  EXPECT_DOUBLE_EQ(r.net_savings().grams(), 0.0);
}

TEST(Extension, Preconditions) {
  EXPECT_THROW((void)evaluate_extension(scenario(100.0), -1), greenhpc::InvalidArgument);
  auto bad = scenario(100.0);
  bad.efficiency_gain = 1.0;
  EXPECT_THROW((void)evaluate_extension(bad, 1), greenhpc::InvalidArgument);
  bad = scenario(100.0);
  bad.efficiency_gain = 0.0;
  EXPECT_THROW((void)extension_breakeven_intensity(bad), greenhpc::InvalidArgument);
}

TEST(Fleet, RefreshIntervalPrecondition) {
  EXPECT_THROW((void)mean_refresh_interval_years({{"only", 2020, std::nullopt}}),
               greenhpc::InvalidArgument);
}

}  // namespace
}  // namespace greenhpc::lifecycle
