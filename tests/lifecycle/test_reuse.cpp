#include "lifecycle/reuse.hpp"

#include <gtest/gtest.h>

#include "embodied/systems.hpp"
#include "util/error.hpp"

namespace greenhpc::lifecycle {
namespace {

TEST(Reuse, PaperClaim275xForHdd) {
  // Section 2.3: "reusing hard disk drives leads to 275x more carbon
  // emissions reductions than recycling."
  const auto hdd = hdd_reuse_model();
  EXPECT_NEAR(hdd.reuse_over_recycle(), 275.0, 3.0);
}

TEST(Reuse, CreditsScaleWithEmbodied) {
  const auto hdd = hdd_reuse_model();
  const Carbon unit = kilograms_co2(30.0);
  const Carbon reuse = hdd.reuse_credit(unit);
  const Carbon recycle = hdd.recycle_credit(unit);
  EXPECT_GT(reuse.grams(), 0.0);
  EXPECT_GT(recycle.grams(), 0.0);
  EXPECT_NEAR(reuse / recycle, hdd.reuse_over_recycle(), 1e-9);
  // Linear scaling.
  EXPECT_NEAR(hdd.reuse_credit(unit * 2.0).grams(), 2.0 * reuse.grams(), 1e-9);
}

TEST(Reuse, ReuseBeatsRecycleForEveryComponent) {
  for (const auto& model : {hdd_reuse_model(), dram_reuse_model(), ssd_reuse_model()}) {
    EXPECT_GT(model.reuse_over_recycle(), 10.0) << model.component;
  }
}

TEST(Reuse, SsdWearLimitsReuse) {
  EXPECT_LT(ssd_reuse_model().reusable_fraction, dram_reuse_model().reusable_fraction);
}

TEST(Reuse, DecommissionOutcomeOrdering) {
  // The section-2.3 hierarchy: reuse > recycle > landfill (= 0).
  const auto outcome = evaluate_decommission(tonnes_co2(500.0), hdd_reuse_model());
  EXPECT_GT(outcome.reuse_savings.grams(), outcome.recycle_savings.grams());
  EXPECT_GT(outcome.recycle_savings.grams(), outcome.landfill_savings.grams());
  EXPECT_DOUBLE_EQ(outcome.landfill_savings.grams(), 0.0);
}

TEST(Reuse, SystemScaleDecommission) {
  // Reusing SuperMUC-NG's storage pool avoids hundreds of tonnes.
  embodied::ActModel model;
  const auto b = embodied_breakdown(model, embodied::supermuc_ng());
  const auto outcome = evaluate_decommission(b.storage, hdd_reuse_model());
  EXPECT_GT(outcome.reuse_savings.tonnes(), 500.0);
  EXPECT_LT(outcome.recycle_savings.tonnes(), 10.0);
}

TEST(Reuse, Preconditions) {
  ReuseRecycleModel m;
  m.recycle_material_credit = 0.0;
  EXPECT_THROW((void)m.reuse_over_recycle(), greenhpc::InvalidArgument);
  EXPECT_THROW((void)evaluate_decommission(grams_co2(-1.0), hdd_reuse_model()),
               greenhpc::InvalidArgument);
}

}  // namespace
}  // namespace greenhpc::lifecycle
