#include <gtest/gtest.h>

#include "lifecycle/fleet.hpp"
#include "util/error.hpp"

namespace greenhpc::lifecycle {
namespace {

std::vector<FleetSystem> toy_fleet() {
  return {
      {{"A", 2012, 2018}, tonnes_co2(600.0)},   // 100 t/y over 6 years
      {{"B", 2015, 2019}, tonnes_co2(400.0)},   // 100 t/y over 4 years
      {{"C", 2019, std::nullopt}, tonnes_co2(1200.0)},  // open: 200 t/y over 6
  };
}

TEST(FleetTimeline, SingleYearAttribution) {
  const auto fleet = toy_fleet();
  // 2013: only A in service.
  EXPECT_NEAR(fleet_embodied_in_year(fleet, 2013).tonnes(), 100.0, 1e-9);
  // 2016: A + B overlap.
  EXPECT_NEAR(fleet_embodied_in_year(fleet, 2016).tonnes(), 200.0, 1e-9);
  // 2020: only C (open-ended, assumed 6-year life).
  EXPECT_NEAR(fleet_embodied_in_year(fleet, 2020).tonnes(), 200.0, 1e-9);
  // Before any system and after C's assumed end: zero.
  EXPECT_DOUBLE_EQ(fleet_embodied_in_year(fleet, 2010).grams(), 0.0);
  EXPECT_DOUBLE_EQ(fleet_embodied_in_year(fleet, 2026).grams(), 0.0);
}

TEST(FleetTimeline, BoundaryYears) {
  const auto fleet = toy_fleet();
  // Start year is in service; decommission year is not.
  EXPECT_NEAR(fleet_embodied_in_year(fleet, 2012).tonnes(), 100.0, 1e-9);
  EXPECT_NEAR(fleet_embodied_in_year(fleet, 2018).tonnes(), 100.0, 1e-9);  // only B
}

TEST(FleetTimeline, SeriesConservesTotalEmbodied) {
  const auto fleet = toy_fleet();
  const auto series = fleet_embodied_timeline(fleet, 2005, 2035);
  Carbon total{};
  for (const Carbon& c : series) total += c;
  // Every system's embodied is fully amortized inside the window.
  EXPECT_NEAR(total.tonnes(), 600.0 + 400.0 + 1200.0, 1e-6);
}

TEST(FleetTimeline, OpenLifetimeAssumptionMatters) {
  const auto fleet = toy_fleet();
  // Assuming a 12-year life halves C's annual share.
  EXPECT_NEAR(fleet_embodied_in_year(fleet, 2020, 12).tonnes(), 100.0, 1e-9);
}

TEST(FleetTimeline, Preconditions) {
  const auto fleet = toy_fleet();
  EXPECT_THROW((void)fleet_embodied_in_year(fleet, 2020, 0), greenhpc::InvalidArgument);
  EXPECT_THROW((void)fleet_embodied_timeline(fleet, 2030, 2020),
               greenhpc::InvalidArgument);
}

TEST(FleetTimeline, EmptyFleetIsZero) {
  EXPECT_DOUBLE_EQ(fleet_embodied_in_year({}, 2020).grams(), 0.0);
}

}  // namespace
}  // namespace greenhpc::lifecycle
