#include <gtest/gtest.h>

#include "hpcsim/simulator.hpp"
#include "hpcsim/workload.hpp"
#include "sched/easy_backfill.hpp"
#include "testing/helpers.hpp"

namespace greenhpc::sched {
namespace {

using greenhpc::testing::constant_trace;
using greenhpc::testing::rigid_job;
using greenhpc::testing::small_cluster;
using hpcsim::JobKind;
using hpcsim::JobSpec;
using hpcsim::Simulator;

JobSpec moldable_job(int id, Duration submit, int natural, Duration runtime) {
  JobSpec j = rigid_job(id, submit, natural, runtime);
  j.kind = JobKind::Moldable;
  j.min_nodes = std::max(1, natural / 2);
  j.max_nodes = natural * 2;
  return j;
}

Simulator::Config cfg(int nodes) {
  Simulator::Config c;
  c.cluster = small_cluster(nodes);
  c.carbon_intensity = constant_trace(200.0, days(2.0));
  return c;
}

TEST(ShrinkToFit, SizingRules) {
  const JobSpec m = moldable_job(1, seconds(0.0), 8, hours(1.0));
  EXPECT_EQ(shrink_to_fit_nodes(m, 10), 8);  // natural fits
  EXPECT_EQ(shrink_to_fit_nodes(m, 8), 8);
  EXPECT_EQ(shrink_to_fit_nodes(m, 6), 6);   // shrink to available
  EXPECT_EQ(shrink_to_fit_nodes(m, 4), 4);   // down to min
  EXPECT_EQ(shrink_to_fit_nodes(m, 3), 0);   // below min: cannot start
  const JobSpec r = rigid_job(2, seconds(0.0), 8, hours(1.0));
  EXPECT_EQ(shrink_to_fit_nodes(r, 6), 0);   // rigid never shrinks
  EXPECT_EQ(shrink_to_fit_nodes(r, 8), 8);
}

TEST(MoldableEasy, ShrinksIntoPartialCluster) {
  // 6 of 8 nodes are busy; a moldable job of natural size 4 (min 2) can
  // start immediately on 2 nodes with shrinking, but must wait without.
  std::vector<JobSpec> jobs = {rigid_job(1, seconds(0.0), 6, hours(2.0)),
                               moldable_job(2, minutes(1.0), 4, hours(1.0))};
  Simulator sim_shrink(cfg(8), jobs);
  EasyBackfillScheduler shrink(true);
  const auto rs = sim_shrink.run(shrink);
  EXPECT_LT(rs.jobs[1].start.minutes(), 3.0);

  Simulator sim_plain(cfg(8), jobs);
  EasyBackfillScheduler plain(false);
  const auto rp = sim_plain.run(plain);
  EXPECT_GT(rp.jobs[1].start.hours(), 1.5);
}

TEST(MoldableEasy, ShrunkJobRunsLonger) {
  // Running at half size with gamma < 1 costs more than 2x runtime.
  std::vector<JobSpec> jobs = {rigid_job(1, seconds(0.0), 6, hours(2.0)),
                               moldable_job(2, minutes(1.0), 4, hours(1.0))};
  jobs[1].scale_gamma = 0.9;
  Simulator sim(cfg(8), jobs);
  EasyBackfillScheduler shrink(true);
  const auto r = sim.run(shrink);
  const double elapsed = (r.jobs[1].finish - r.jobs[1].start).hours();
  EXPECT_GT(elapsed, 1.5);  // 2^0.9 ~ 1.87x of 1h
  EXPECT_LT(elapsed, 2.1);
}

TEST(MoldableEasy, NameReflectsMode) {
  EXPECT_EQ(EasyBackfillScheduler(true).name(), "easy-backfill+mold");
  EXPECT_EQ(EasyBackfillScheduler(false).name(), "easy-backfill");
}

TEST(MoldableEasy, GeneratorProducesMoldables) {
  hpcsim::WorkloadConfig wl;
  wl.job_count = 1000;
  wl.span = days(2.0);
  wl.moldable_fraction = 0.3;
  wl.malleable_fraction = 0.2;
  const auto jobs = hpcsim::WorkloadGenerator(wl, 5).generate();
  int moldable = 0, malleable = 0;
  for (const auto& j : jobs) {
    if (j.kind == JobKind::Moldable) ++moldable;
    if (j.kind == JobKind::Malleable) ++malleable;
    if (j.kind == JobKind::Moldable) {
      EXPECT_LE(j.min_nodes, j.nodes_used);
      EXPECT_GE(j.max_nodes, j.nodes_used);
    }
  }
  EXPECT_NEAR(moldable / 1000.0, 0.3, 0.05);
  EXPECT_NEAR(malleable / 1000.0, 0.2, 0.05);
}

TEST(MoldableEasy, ImprovesWaitOnMoldableWorkload) {
  hpcsim::WorkloadConfig wl;
  wl.job_count = 120;
  wl.span = days(1.0);
  wl.max_job_nodes = 16;
  wl.moldable_fraction = 0.6;
  const auto jobs = hpcsim::WorkloadGenerator(wl, 9).generate();
  Simulator sim_shrink(cfg(32), jobs);
  EasyBackfillScheduler shrink(true);
  const auto rs = sim_shrink.run(shrink);
  Simulator sim_plain(cfg(32), jobs);
  EasyBackfillScheduler plain(false);
  const auto rp = sim_plain.run(plain);
  EXPECT_EQ(rs.completed_jobs, rp.completed_jobs);
  EXPECT_LE(rs.mean_wait_hours(), rp.mean_wait_hours() + 1e-9);
}

}  // namespace
}  // namespace greenhpc::sched
