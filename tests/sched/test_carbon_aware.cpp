#include "sched/carbon_aware.hpp"

#include <gtest/gtest.h>

#include "hpcsim/simulator.hpp"
#include "sched/easy_backfill.hpp"
#include "testing/helpers.hpp"
#include "util/error.hpp"

namespace greenhpc::sched {
namespace {

using greenhpc::testing::rigid_job;
using greenhpc::testing::small_cluster;
using greenhpc::testing::square_trace;
using hpcsim::Simulator;

std::shared_ptr<const carbon::Forecaster> persistence() {
  return std::make_shared<carbon::PersistenceForecaster>();
}

Simulator::Config cfg(util::TimeSeries trace, int nodes = 8) {
  Simulator::Config c;
  c.cluster = small_cluster(nodes);
  c.carbon_intensity = std::move(trace);
  return c;
}

TEST(CarbonAware, RequiresForecaster) {
  EXPECT_THROW(CarbonAwareEasyScheduler({}, nullptr), greenhpc::InvalidArgument);
}

TEST(CarbonAware, ConfigValidation) {
  CarbonAwareEasyScheduler::Config bad;
  bad.green_quantile = 0.0;
  EXPECT_THROW(CarbonAwareEasyScheduler(bad, persistence()), greenhpc::InvalidArgument);
  bad = {};
  bad.improvement_factor = 0.0;
  EXPECT_THROW(CarbonAwareEasyScheduler(bad, persistence()), greenhpc::InvalidArgument);
}

TEST(CarbonAware, ShiftsWorkIntoGreenPeriods) {
  // 12h dirty / 12h green square wave, period aligned to days so
  // persistence forecasting is exact. Jobs submitted during the dirty
  // phase should be delayed into the green phase.
  const auto trace = square_trace(500.0, 100.0, hours(12.0), days(6.0));
  // Day pattern: [0,12) = 500 (dirty), [12,24) = 100 (green).
  std::vector<hpcsim::JobSpec> jobs;
  for (int i = 0; i < 6; ++i) {
    // Submit in the dirty morning of day 2 (history has warmed up).
    jobs.push_back(rigid_job(i + 1, days(2.0) + hours(2.0 + i), 2, hours(2.0)));
  }
  CarbonAwareEasyScheduler::Config ca_cfg;
  ca_cfg.max_hold = hours(14.0);
  ca_cfg.lookahead = hours(14.0);

  Simulator sim_easy(cfg(trace), jobs);
  EasyBackfillScheduler easy;
  const auto r_easy = sim_easy.run(easy);

  Simulator sim_ca(cfg(trace), jobs);
  CarbonAwareEasyScheduler ca(ca_cfg, persistence());
  const auto r_ca = sim_ca.run(ca);

  ASSERT_EQ(r_easy.completed_jobs, 6);
  ASSERT_EQ(r_ca.completed_jobs, 6);
  // Carbon-aware runs strictly cleaner on job carbon.
  Carbon easy_carbon{}, ca_carbon{};
  for (const auto& j : r_easy.jobs) easy_carbon += j.carbon;
  for (const auto& j : r_ca.jobs) ca_carbon += j.carbon;
  EXPECT_LT(ca_carbon.grams(), easy_carbon.grams() * 0.75);
  // And jobs were actually delayed into the green window (>= 12:00).
  for (const auto& j : r_ca.jobs) {
    const double hour_of_day = std::fmod(j.start.hours(), 24.0);
    EXPECT_GE(hour_of_day, 11.9);
  }
}

TEST(CarbonAware, MaxHoldBoundsTheDelay) {
  // Permanently dirty trace with a tiny daily dip the forecaster sees:
  // jobs can never find a green window but must start once max_hold
  // expires.
  const auto trace = square_trace(500.0, 480.0, hours(12.0), days(4.0));
  std::vector<hpcsim::JobSpec> jobs = {rigid_job(1, days(1.5), 2, hours(1.0))};
  CarbonAwareEasyScheduler::Config ca_cfg;
  ca_cfg.max_hold = hours(3.0);
  ca_cfg.improvement_factor = 0.5;  // demands a 2x improvement: never comes
  Simulator sim(cfg(trace), jobs);
  CarbonAwareEasyScheduler ca(ca_cfg, persistence());
  const auto r = sim.run(ca);
  ASSERT_TRUE(r.jobs[0].completed);
  EXPECT_LE(r.jobs[0].wait().hours(), 3.1);
}

TEST(CarbonAware, GreenNowStartsImmediately) {
  const auto trace = square_trace(100.0, 500.0, hours(12.0), days(4.0));
  // Submit during the green phase of day 2.
  std::vector<hpcsim::JobSpec> jobs = {rigid_job(1, days(2.0) + hours(3.0), 2, hours(1.0))};
  Simulator sim(cfg(trace), jobs);
  CarbonAwareEasyScheduler ca({}, persistence());
  const auto r = sim.run(ca);
  EXPECT_LE(r.jobs[0].wait().minutes(), 5.0);
}

TEST(CarbonAware, QueuePressureOpensTheGate) {
  // Dirty phase, but the backlog exceeds the pressure limit -> schedule
  // anyway (holding would only waste wait time).
  const auto trace = square_trace(500.0, 100.0, hours(12.0), days(6.0));
  std::vector<hpcsim::JobSpec> jobs;
  for (int i = 0; i < 24; ++i) {
    jobs.push_back(rigid_job(i + 1, days(2.0) + hours(1.0), 4, hours(4.0)));
  }
  CarbonAwareEasyScheduler::Config ca_cfg;
  ca_cfg.backlog_pressure_limit = 2.0;  // 24 jobs x 4 nodes >> 2 x 8 nodes
  Simulator sim(cfg(trace, 8), jobs);
  CarbonAwareEasyScheduler ca(ca_cfg, persistence());
  const auto r = sim.run(ca);
  // First jobs start immediately despite the dirty phase.
  Duration earliest = days(100.0);
  for (const auto& j : r.jobs) {
    if (j.completed) earliest = std::min(earliest, j.start);
  }
  EXPECT_LE((earliest - (days(2.0) + hours(1.0))).minutes(), 5.0);
}

}  // namespace
}  // namespace greenhpc::sched
