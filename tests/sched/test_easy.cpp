#include "sched/easy_backfill.hpp"

#include <gtest/gtest.h>

#include "hpcsim/simulator.hpp"
#include "sched/fcfs.hpp"
#include "testing/helpers.hpp"

namespace greenhpc::sched {
namespace {

using greenhpc::testing::constant_trace;
using greenhpc::testing::rigid_job;
using greenhpc::testing::small_cluster;
using hpcsim::Simulator;

Simulator::Config cfg(int nodes) {
  Simulator::Config c;
  c.cluster = small_cluster(nodes);
  c.carbon_intensity = constant_trace(200.0, days(3.0));
  return c;
}

TEST(Reservation, ImmediateWhenFits) {
  const auto r = compute_reservation(hours(1.0), 8, 4, {});
  EXPECT_EQ(r.shadow, hours(1.0));
  EXPECT_EQ(r.spare, 4);
}

TEST(Reservation, WaitsForReleases) {
  std::vector<ReleaseEvent> releases = {{hours(2.0), 4}, {hours(3.0), 4}};
  const auto r = compute_reservation(hours(1.0), 2, 8, releases);
  EXPECT_EQ(r.shadow, hours(3.0));
  EXPECT_EQ(r.spare, 2);  // 2 + 4 + 4 - 8
}

TEST(Reservation, NeverFitsGoesFarFuture) {
  const auto r = compute_reservation(hours(1.0), 2, 100, {});
  EXPECT_GT(r.shadow, days(1000.0));
}

TEST(Easy, BackfillsAroundBlockedHead) {
  // 8 nodes. Job1 takes 6 for 2h. Job2 (head) needs 8 -> reserved at t=2h.
  // Job3 needs 2 nodes for 1h -> fits now AND ends before the shadow.
  std::vector<hpcsim::JobSpec> jobs = {
      rigid_job(1, seconds(0.0), 6, hours(2.0)),
      rigid_job(2, minutes(1.0), 8, hours(1.0)),
      rigid_job(3, minutes(2.0), 2, hours(1.0)),
  };
  // walltime = 1.5x runtime from the helper; job3 walltime = 1.5h < 2h shadow.
  Simulator sim(cfg(8), jobs);
  EasyBackfillScheduler sched;
  const auto result = sim.run(sched);
  // Job 3 backfills: starts within minutes, long before job 2.
  EXPECT_LT(result.jobs[2].start.hours(), 0.2);
  EXPECT_GE(result.jobs[1].start.hours(), 1.9);
}

TEST(Easy, BackfillMustNotDelayReservation) {
  // Job3's walltime exceeds the shadow and it would steal reserved nodes,
  // so it must NOT backfill.
  std::vector<hpcsim::JobSpec> jobs = {
      rigid_job(1, seconds(0.0), 6, hours(2.0)),
      rigid_job(2, minutes(1.0), 8, hours(1.0)),
      rigid_job(3, minutes(2.0), 2, hours(4.0)),  // walltime 6h > shadow
  };
  Simulator sim(cfg(8), jobs);
  EasyBackfillScheduler sched;
  const auto result = sim.run(sched);
  EXPECT_GE(result.jobs[2].start, result.jobs[1].start);
}

TEST(Easy, BackfillIntoSpareNodesAllowedEvenIfLong) {
  // Shadow needs 6 of 8 nodes -> 2 spare. A long 2-node job may backfill
  // into the spare set without delaying the reservation.
  std::vector<hpcsim::JobSpec> jobs = {
      rigid_job(1, seconds(0.0), 6, hours(2.0)),
      rigid_job(2, minutes(1.0), 6, hours(1.0)),  // head: reserved at t=2h, spare=2
      rigid_job(3, minutes(2.0), 2, hours(5.0)),  // long but fits in spare
  };
  Simulator sim(cfg(8), jobs);
  EasyBackfillScheduler sched;
  const auto result = sim.run(sched);
  EXPECT_LT(result.jobs[2].start.hours(), 0.2);
  // Head still starts on time.
  EXPECT_LT(result.jobs[1].start.hours(), 2.2);
}

TEST(Easy, ImprovesUtilizationOverFcfs) {
  // Mixed workload: EASY should complete the same jobs no later, with
  // equal or better mean wait.
  std::vector<hpcsim::JobSpec> jobs;
  int id = 0;
  for (int i = 0; i < 30; ++i) {
    jobs.push_back(rigid_job(++id, minutes(i * 11.0), 1 + (i * 3) % 8,
                             minutes(40.0 + (i * 17) % 120)));
  }
  Simulator sim_f(cfg(8), jobs);
  FcfsScheduler fcfs;
  const auto rf = sim_f.run(fcfs);
  Simulator sim_e(cfg(8), jobs);
  EasyBackfillScheduler easy;
  const auto re = sim_e.run(easy);
  EXPECT_EQ(rf.completed_jobs, 30);
  EXPECT_EQ(re.completed_jobs, 30);
  EXPECT_LE(re.mean_wait_hours(), rf.mean_wait_hours() + 1e-9);
}

TEST(Easy, ProjectedReleasesSortedAndWalltimeBased) {
  std::vector<hpcsim::JobSpec> jobs = {
      rigid_job(1, seconds(0.0), 2, hours(3.0)),
      rigid_job(2, seconds(0.0), 3, hours(1.0)),
  };
  Simulator sim(cfg(8), jobs);
  class Inspect final : public hpcsim::SchedulingPolicy {
   public:
    std::vector<ReleaseEvent> seen;
    void on_tick(hpcsim::SimulationView& view) override {
      const std::vector<hpcsim::JobId> pending = view.pending_jobs();
      for (hpcsim::JobId id : pending) {
        (void)view.start(id, view.spec(id).nodes_requested);
      }
      if (view.now() == minutes(5.0)) seen = projected_releases(view);
    }
    std::string name() const override { return "inspect"; }
  };
  Inspect sched;
  (void)sim.run(sched);
  ASSERT_EQ(sched.seen.size(), 2u);
  EXPECT_LE(sched.seen[0].time, sched.seen[1].time);
  // Walltime = 1.5x runtime in the helper: job2 releases at 1.5h.
  EXPECT_NEAR(sched.seen[0].time.hours(), 1.5, 0.01);
  EXPECT_EQ(sched.seen[0].nodes, 3);
}

}  // namespace
}  // namespace greenhpc::sched
