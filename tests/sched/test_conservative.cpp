#include "sched/conservative.hpp"

#include <gtest/gtest.h>

#include "hpcsim/simulator.hpp"
#include "sched/easy_backfill.hpp"
#include "testing/helpers.hpp"
#include "util/error.hpp"

namespace greenhpc::sched {
namespace {

using greenhpc::testing::constant_trace;
using greenhpc::testing::rigid_job;
using greenhpc::testing::small_cluster;
using hpcsim::Simulator;

TEST(CapacityProfile, ImmediateFit) {
  CapacityProfile p(hours(1.0), 8, 8);
  EXPECT_EQ(p.earliest_fit(4, hours(2.0)), hours(1.0));
  EXPECT_EQ(p.free_at(hours(1.0)), 8);
}

TEST(CapacityProfile, WaitsForRelease) {
  CapacityProfile p(hours(0.0), 2, 8);
  p.add_release(hours(3.0), 6);
  EXPECT_EQ(p.earliest_fit(4, hours(1.0)), hours(3.0));
  EXPECT_EQ(p.earliest_fit(2, hours(1.0)), hours(0.0));
}

TEST(CapacityProfile, ReservationCarvesCapacity) {
  CapacityProfile p(hours(0.0), 8, 8);
  p.reserve(hours(0.0), hours(2.0), 6);
  // Only 2 free until t=2h.
  EXPECT_EQ(p.free_at(hours(1.0)), 2);
  EXPECT_EQ(p.earliest_fit(4, hours(1.0)), hours(2.0));
  EXPECT_EQ(p.earliest_fit(2, hours(1.0)), hours(0.0));
}

TEST(CapacityProfile, FitMustHoldForWholeDuration) {
  CapacityProfile p(hours(0.0), 8, 8);
  // Future reservation at t=2h takes 6 nodes for 2h.
  p.reserve(hours(2.0), hours(2.0), 6);
  // A 4-node job lasting 3h cannot start at t=0 (would overlap), nor at
  // t=2 (only 2 free); earliest is t=4h.
  EXPECT_EQ(p.earliest_fit(4, hours(3.0)), hours(4.0));
  // A 2-node job of any length fits immediately.
  EXPECT_EQ(p.earliest_fit(2, hours(10.0)), hours(0.0));
}

TEST(CapacityProfile, ImpossibleRequestsGoFarFuture) {
  CapacityProfile p(hours(0.0), 4, 4);
  EXPECT_GT(p.earliest_fit(16, hours(1.0)), days(1000.0));
}

TEST(CapacityProfile, Preconditions) {
  EXPECT_THROW(CapacityProfile(hours(0.0), -1, 4), greenhpc::InvalidArgument);
  CapacityProfile p(hours(0.0), 4, 4);
  EXPECT_THROW(p.add_release(hours(1.0), -2), greenhpc::InvalidArgument);
  EXPECT_THROW((void)p.earliest_fit(0, hours(1.0)), greenhpc::InvalidArgument);
  EXPECT_THROW(p.reserve(hours(0.0), seconds(0.0), 1), greenhpc::InvalidArgument);
}

Simulator::Config cfg(int nodes) {
  Simulator::Config c;
  c.cluster = small_cluster(nodes);
  c.carbon_intensity = constant_trace(200.0, days(3.0));
  return c;
}

TEST(Conservative, RunsWorkloadToCompletion) {
  std::vector<hpcsim::JobSpec> jobs;
  for (int i = 0; i < 20; ++i) {
    jobs.push_back(rigid_job(i + 1, minutes(i * 9.0), 1 + (i * 5) % 8,
                             minutes(30.0 + (i * 13) % 90)));
  }
  Simulator sim(cfg(8), jobs);
  ConservativeBackfillScheduler sched;
  const auto result = sim.run(sched);
  EXPECT_EQ(result.completed_jobs, 20);
}

TEST(Conservative, BackfillsShortJobsIntoHoles) {
  std::vector<hpcsim::JobSpec> jobs = {
      rigid_job(1, seconds(0.0), 6, hours(2.0)),
      rigid_job(2, minutes(1.0), 8, hours(1.0)),   // blocked, reserved at ~3h (walltime)
      rigid_job(3, minutes(2.0), 2, hours(1.0)),   // walltime 1.5h fits before shadow
  };
  Simulator sim(cfg(8), jobs);
  ConservativeBackfillScheduler sched;
  const auto result = sim.run(sched);
  EXPECT_LT(result.jobs[2].start.hours(), 0.2);
  EXPECT_GE(result.jobs[1].start, result.jobs[0].start);
}

TEST(Conservative, NeverDelaysAnEarlierReservationUnlikeEasy) {
  // Queue: J1 running (6 of 8). J2 (head, 8 nodes). J3 (2 nodes, long).
  // J4 (2 nodes, short). Under EASY, J3 may not backfill (delays J2's
  // reservation) but under conservative J3 also must not start; both
  // should start J4 which finishes before the shadow.
  std::vector<hpcsim::JobSpec> jobs = {
      rigid_job(1, seconds(0.0), 6, hours(2.0)),
      rigid_job(2, minutes(1.0), 8, hours(2.0)),
      rigid_job(3, minutes(2.0), 2, hours(8.0)),
      rigid_job(4, minutes(3.0), 2, hours(1.0)),
  };
  Simulator sim(cfg(8), jobs);
  ConservativeBackfillScheduler sched;
  const auto result = sim.run(sched);
  // J4 backfills immediately; J3 waits until after J2 (its reservation
  // would collide with J2's).
  EXPECT_LT(result.jobs[3].start.hours(), 0.2);
  EXPECT_GE(result.jobs[2].start, result.jobs[1].start);
}

TEST(Conservative, WaitNoWorseThanFcfsOrdering) {
  std::vector<hpcsim::JobSpec> jobs;
  for (int i = 0; i < 25; ++i) {
    jobs.push_back(rigid_job(i + 1, minutes(i * 7.0), 1 + (i * 3) % 6,
                             minutes(45.0 + (i * 11) % 60)));
  }
  Simulator sim_c(cfg(8), jobs);
  ConservativeBackfillScheduler cons;
  const auto rc = sim_c.run(cons);
  Simulator sim_e(cfg(8), jobs);
  EasyBackfillScheduler easy;
  const auto re = sim_e.run(easy);
  EXPECT_EQ(rc.completed_jobs, re.completed_jobs);
  // EASY is at least as aggressive; conservative should be within 2x of
  // its mean wait on this mix (sanity envelope, not a tight bound).
  EXPECT_LE(rc.mean_wait_hours(), re.mean_wait_hours() * 2.0 + 0.5);
}

}  // namespace
}  // namespace greenhpc::sched
