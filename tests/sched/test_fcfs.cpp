#include "sched/fcfs.hpp"

#include <gtest/gtest.h>

#include "hpcsim/simulator.hpp"
#include "testing/helpers.hpp"

namespace greenhpc::sched {
namespace {

using greenhpc::testing::constant_trace;
using greenhpc::testing::malleable_job;
using greenhpc::testing::rigid_job;
using greenhpc::testing::small_cluster;
using hpcsim::Simulator;

Simulator::Config cfg(int nodes) {
  Simulator::Config c;
  c.cluster = small_cluster(nodes);
  c.carbon_intensity = constant_trace(200.0, days(2.0));
  return c;
}

TEST(Fcfs, StartNodesHelper) {
  EXPECT_EQ(start_nodes(rigid_job(1, seconds(0.0), 4, hours(1.0))), 4);
  const auto m = malleable_job(2, seconds(0.0), 6, hours(1.0), 16);
  EXPECT_EQ(start_nodes(m), 6);
  auto fat = rigid_job(3, seconds(0.0), 8, hours(1.0));
  fat.nodes_used = 4;
  EXPECT_EQ(start_nodes(fat), 8);  // rigid holds what was requested
}

TEST(Fcfs, RunsInSubmissionOrder) {
  std::vector<hpcsim::JobSpec> jobs = {
      rigid_job(1, seconds(0.0), 8, hours(1.0)),
      rigid_job(2, minutes(1.0), 8, hours(1.0)),
      rigid_job(3, minutes(2.0), 8, hours(1.0)),
  };
  Simulator sim(cfg(8), jobs);
  FcfsScheduler sched;
  const auto result = sim.run(sched);
  EXPECT_LT(result.jobs[0].start, result.jobs[1].start);
  EXPECT_LT(result.jobs[1].start, result.jobs[2].start);
  EXPECT_EQ(result.completed_jobs, 3);
}

TEST(Fcfs, HeadOfLineBlocking) {
  // Big head job blocks a small one even though it would fit — the FCFS
  // pathology EASY exists to fix.
  std::vector<hpcsim::JobSpec> jobs = {
      rigid_job(1, seconds(0.0), 6, hours(2.0)),   // running
      rigid_job(2, minutes(1.0), 6, hours(1.0)),   // blocked head (needs 6, 2 free)
      rigid_job(3, minutes(2.0), 2, minutes(30.0)) // would fit in the 2 free nodes
  };
  Simulator sim(cfg(8), jobs);
  FcfsScheduler sched;
  const auto result = sim.run(sched);
  // Job 3 must NOT start before job 2 under strict FCFS.
  EXPECT_GE(result.jobs[2].start, result.jobs[1].start);
}

TEST(Fcfs, NameIsStable) {
  FcfsScheduler sched;
  EXPECT_EQ(sched.name(), "fcfs");
}

}  // namespace
}  // namespace greenhpc::sched
