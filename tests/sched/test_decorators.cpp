#include "sched/decorators.hpp"

#include <gtest/gtest.h>

#include "hpcsim/simulator.hpp"
#include "powerstack/policies.hpp"
#include "sched/easy_backfill.hpp"
#include "testing/helpers.hpp"
#include "util/error.hpp"

namespace greenhpc::sched {
namespace {

using greenhpc::testing::malleable_job;
using greenhpc::testing::rigid_job;
using greenhpc::testing::small_cluster;
using greenhpc::testing::square_trace;
using hpcsim::Simulator;

Simulator::Config cfg(util::TimeSeries trace, int nodes = 8) {
  Simulator::Config c;
  c.cluster = small_cluster(nodes);
  c.carbon_intensity = std::move(trace);
  return c;
}

TEST(Checkpoint, RequiresInnerAndHysteresis) {
  EXPECT_THROW(CheckpointDecorator({}, nullptr), greenhpc::InvalidArgument);
  CheckpointDecorator::Config bad;
  bad.suspend_quantile = 0.4;
  bad.resume_quantile = 0.6;
  EXPECT_THROW(CheckpointDecorator(bad, std::make_unique<EasyBackfillScheduler>()),
               greenhpc::InvalidArgument);
}

TEST(Checkpoint, NameComposition) {
  CheckpointDecorator d({}, std::make_unique<EasyBackfillScheduler>());
  EXPECT_EQ(d.name(), "easy-backfill+checkpoint");
  MalleableDecorator m({}, std::make_unique<EasyBackfillScheduler>());
  EXPECT_EQ(m.name(), "easy-backfill+malleable");
}

TEST(Checkpoint, SuspendsInDirtyResumesInGreen) {
  // Square wave 12h green / 12h dirty. A long checkpointable job started
  // in green should be suspended when the dirty phase hits and resumed in
  // the next green phase.
  const auto trace = square_trace(100.0, 500.0, hours(12.0), days(8.0));
  hpcsim::JobSpec j = rigid_job(1, days(1.0) + hours(1.0), 4, hours(20.0));
  j.checkpointable = true;
  j.walltime = hours(40.0);
  Simulator sim(cfg(trace), {j});
  CheckpointDecorator sched({}, std::make_unique<EasyBackfillScheduler>());
  const auto r = sim.run(sched);
  ASSERT_TRUE(r.jobs[0].completed);
  EXPECT_GE(r.jobs[0].suspend_count, 1);
  // Carbon should beat the non-checkpointing baseline.
  Simulator sim_base(cfg(trace), {j});
  EasyBackfillScheduler base;
  const auto rb = sim_base.run(base);
  EXPECT_LT(r.jobs[0].carbon.grams(), rb.jobs[0].carbon.grams());
}

TEST(Checkpoint, LeavesNonCheckpointableAlone) {
  const auto trace = square_trace(100.0, 500.0, hours(12.0), days(6.0));
  hpcsim::JobSpec j = rigid_job(1, days(1.0) + hours(1.0), 4, hours(20.0));
  j.checkpointable = false;
  j.walltime = hours(40.0);
  Simulator sim(cfg(trace), {j});
  CheckpointDecorator sched({}, std::make_unique<EasyBackfillScheduler>());
  const auto r = sim.run(sched);
  ASSERT_TRUE(r.jobs[0].completed);
  EXPECT_EQ(r.jobs[0].suspend_count, 0);
}

TEST(Checkpoint, SkipsNearlyDoneJobs) {
  const auto trace = square_trace(100.0, 500.0, hours(12.0), days(4.0));
  // Job finishes within min_remaining of the dirty edge -> not suspended.
  hpcsim::JobSpec j = rigid_job(1, days(1.0) + hours(1.0), 4, hours(11.5));
  j.checkpointable = true;
  j.walltime = hours(23.0);
  CheckpointDecorator::Config ckpt_cfg;
  ckpt_cfg.min_remaining = hours(2.0);
  Simulator sim(cfg(trace), {j});
  CheckpointDecorator sched(ckpt_cfg, std::make_unique<EasyBackfillScheduler>());
  const auto r = sim.run(sched);
  ASSERT_TRUE(r.jobs[0].completed);
  EXPECT_EQ(r.jobs[0].suspend_count, 0);
}

TEST(Checkpoint, MinDwellHoldsResumePastGreenEdge) {
  // Same scenario twice, only min_dwell differs. The job is suspended when
  // the dirty phase hits; when the green phase returns the short-dwell run
  // resumes at the edge, while the long-dwell run must sit out most of the
  // green window (dwell expires mid-window), finishing hours later.
  const auto trace = square_trace(100.0, 500.0, hours(12.0), days(8.0));
  hpcsim::JobSpec j = rigid_job(1, days(1.0) + hours(1.0), 4, hours(20.0));
  j.checkpointable = true;
  j.walltime = hours(40.0);

  auto run_with_dwell = [&](Duration dwell) {
    CheckpointDecorator::Config c;
    c.min_dwell = dwell;
    Simulator sim(cfg(trace), {j});
    CheckpointDecorator sched(c, std::make_unique<EasyBackfillScheduler>());
    return sim.run(sched);
  };
  const auto r_short = run_with_dwell(minutes(30.0));
  const auto r_long = run_with_dwell(hours(18.0));
  ASSERT_TRUE(r_short.jobs[0].completed);
  ASSERT_TRUE(r_long.jobs[0].completed);
  ASSERT_GE(r_short.jobs[0].suspend_count, 1);
  ASSERT_GE(r_long.jobs[0].suspend_count, 1);
  // Suspended ~11 h into a 12 h dirty phase; an 18 h dwell eats ~6 h of
  // the following green window that the 30 min dwell does not.
  EXPECT_GT(r_long.jobs[0].finish.hours(), r_short.jobs[0].finish.hours() + 3.0);
}

TEST(Malleable, ShrinksUnderBudgetGrowsWithHeadroom) {
  // Budget halves in the "dirty" phase; malleable jobs should shrink
  // instead of running deeply capped, then grow back.
  const auto trace = square_trace(100.0, 500.0, hours(12.0), days(6.0));
  hpcsim::JobSpec j = malleable_job(1, days(1.0), 4, hours(30.0), 8);
  j.walltime = hours(60.0);
  Simulator sim(cfg(trace), {j});
  MalleableDecorator sched({}, std::make_unique<EasyBackfillScheduler>());
  powerstack::IntensityProportionalPolicy budget(
      {.ci_clean = 150.0, .ci_dirty = 400.0, .min_fraction = 0.4, .max_fraction = 1.0});
  const auto r = sim.run(sched, &budget);
  ASSERT_TRUE(r.jobs[0].completed);
  // The allocation varied: busy-node series must show at least two levels.
  double lo = 1e9, hi = 0.0;
  for (double v : r.busy_nodes.values()) {
    if (v <= 0.0) continue;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(lo, hi);
}

TEST(Malleable, NoMalleableJobsIsHarmless) {
  const auto trace = square_trace(100.0, 500.0, hours(12.0), days(4.0));
  Simulator sim(cfg(trace), {rigid_job(1, seconds(0.0), 4, hours(2.0))});
  MalleableDecorator sched({}, std::make_unique<EasyBackfillScheduler>());
  const auto r = sim.run(sched);
  EXPECT_TRUE(r.jobs[0].completed);
}

TEST(Malleable, ConfigValidation) {
  EXPECT_THROW(MalleableDecorator({}, nullptr), greenhpc::InvalidArgument);
  MalleableDecorator::Config bad;
  bad.max_step = 0;
  EXPECT_THROW(MalleableDecorator(bad, std::make_unique<EasyBackfillScheduler>()),
               greenhpc::InvalidArgument);
}

}  // namespace
}  // namespace greenhpc::sched
