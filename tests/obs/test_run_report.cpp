#include "obs/run_report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/metrics.hpp"

namespace greenhpc::obs {
namespace {

TEST(Fnv1a, MatchesRepoDigestConvention) {
  // Pinned against the offset basis SweepEngine and bench_perf seed their
  // digests with (1469598103934665603, not the textbook FNV basis) — the
  // function must keep matching the repo-wide convention.
  EXPECT_EQ(fnv1a(""), 0x14650fb0739d0383ull);
  EXPECT_EQ(fnv1a("a"), 0x44bd8ad473cd9906ull);
  EXPECT_EQ(fnv1a("greenhpc"), 0xc30cc90b9eb09d8bull);
  // Sensitivity: neighbouring inputs must not collide.
  EXPECT_NE(fnv1a("greenhpc"), fnv1a("greenhpd"));
}

TEST(RunReport, JsonBundlesConfigNumbersAndLabels) {
  RunReport r;
  r.tool = "greenhpc simulate";
  r.config = "simulate --nodes 16";
  r.config_digest = fnv1a(r.config);
  r.wall_s = 1.5;
  r.embed_metrics = false;
  r.add("jobs_completed", 40.0);
  r.add_label("scheduler", "easy");
  std::ostringstream os;
  r.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"tool\": \"greenhpc simulate\""), std::string::npos);
  EXPECT_NE(json.find("\"config\": \"simulate --nodes 16\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_s\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"jobs_completed\": 40"), std::string::npos);
  EXPECT_NE(json.find("\"scheduler\": \"easy\""), std::string::npos);
  EXPECT_EQ(json.find("\"metrics\""), std::string::npos);
  // Balanced braces => structurally sound JSON for this flat schema.
  long depth = 0;
  for (const char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(RunReport, EmbedsGlobalMetricsSnapshot) {
  Registry::global().counter("obs.test.report_embed").add(3);
  RunReport r;
  r.tool = "greenhpc test";
  std::ostringstream os;
  r.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"metrics\": {"), std::string::npos);
  EXPECT_NE(json.find("\"obs.test.report_embed\":3"), std::string::npos);
}

TEST(RunReport, EscapesQuotesInConfig) {
  RunReport r;
  r.tool = "t";
  r.config = "say \"hi\"";
  r.embed_metrics = false;
  std::ostringstream os;
  r.write_json(os);
  EXPECT_NE(os.str().find("say \\\"hi\\\""), std::string::npos);
}

}  // namespace
}  // namespace greenhpc::obs
