#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

namespace greenhpc::obs {
namespace {

/// Every tracer test drains and re-arms the shared rings; run them with
/// tracing off at entry and restore that state at exit.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::set_enabled(false);
    Tracer::reset();
  }
  void TearDown() override {
    Tracer::set_enabled(false);
    Tracer::reset();
  }
};

std::size_t total_events(const std::vector<ThreadTrace>& traces) {
  std::size_t n = 0;
  for (const auto& t : traces) n += t.events.size();
  return n;
}

TEST_F(TraceTest, DisabledSpanRecordsNothing) {
  {
    GREENHPC_TRACE_SPAN("obs.test.disabled");
  }
  GREENHPC_TRACE_INSTANT("obs.test.disabled_instant", 1.0);
  GREENHPC_TRACE_COUNTER("obs.test.disabled_counter", 2.0);
  EXPECT_EQ(total_events(Tracer::snapshot()), 0u);
}

TEST_F(TraceTest, EnabledSpanIsRecordedWithDuration) {
  Tracer::set_enabled(true);
  {
    GREENHPC_TRACE_SPAN("obs.test.span");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Tracer::set_enabled(false);
  const auto traces = Tracer::snapshot();
  ASSERT_EQ(total_events(traces), 1u);
  const TraceEvent& e = traces.front().events.front();
  EXPECT_STREQ(e.name, "obs.test.span");
  EXPECT_EQ(e.phase, 'X');
  EXPECT_GE(e.dur_ns, 500'000u);  // slept ~1ms; be lenient about coarse clocks
}

TEST_F(TraceTest, InstantAndCounterEventsCarryValues) {
  Tracer::set_enabled(true);
  GREENHPC_TRACE_INSTANT("obs.test.instant", 7.0);
  GREENHPC_TRACE_COUNTER("obs.test.counter", 42.0);
  Tracer::set_enabled(false);
  const auto traces = Tracer::snapshot();
  ASSERT_EQ(total_events(traces), 2u);
  char phases[2] = {0, 0};
  double values[2] = {0.0, 0.0};
  std::size_t k = 0;
  for (const auto& t : traces) {
    for (const auto& e : t.events) {
      phases[k] = e.phase;
      values[k] = e.value;
      ++k;
    }
  }
  EXPECT_EQ(phases[0], 'i');
  EXPECT_DOUBLE_EQ(values[0], 7.0);
  EXPECT_EQ(phases[1], 'C');
  EXPECT_DOUBLE_EQ(values[1], 42.0);
}

TEST_F(TraceTest, SpansFromManyThreadsDrainWithMonotoneTimestamps) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  Tracer::set_enabled(true);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        GREENHPC_TRACE_SPAN("obs.test.mt");
      }
    });
  }
  for (auto& th : threads) th.join();  // join = happens-before for the drain
  Tracer::set_enabled(false);

  const auto traces = Tracer::snapshot();
  std::size_t mt_spans = 0;
  for (const auto& tt : traces) {
    std::uint64_t prev_ts = 0;
    for (const auto& e : tt.events) {
      ASSERT_EQ(e.phase, 'X');
      ASSERT_STREQ(e.name, "obs.test.mt");
      // Spans close (and are recorded) in order on each thread, so the
      // per-thread begin timestamps must be monotone non-decreasing.
      EXPECT_GE(e.ts_ns, prev_ts);
      prev_ts = e.ts_ns;
      ++mt_spans;
    }
  }
  EXPECT_EQ(mt_spans, static_cast<std::size_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(Tracer::dropped(), 0u);

  // The drained set must serialize to structurally valid trace JSON.
  std::ostringstream os;
  Tracer::write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  long depth = 0;
  for (const char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(TraceTest, AggregateSpansSumsPerName) {
  Tracer::set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    GREENHPC_TRACE_SPAN("obs.test.agg_a");
  }
  {
    GREENHPC_TRACE_SPAN("obs.test.agg_b");
  }
  Tracer::set_enabled(false);
  const auto stats = Tracer::aggregate_spans();
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  for (const auto& s : stats) {
    if (s.name == "obs.test.agg_a") a = s.count;
    if (s.name == "obs.test.agg_b") b = s.count;
    EXPECT_GE(s.total_ms, 0.0);
  }
  EXPECT_EQ(a, 5u);
  EXPECT_EQ(b, 1u);
}

TEST_F(TraceTest, ResetDropsBufferedEvents) {
  Tracer::set_enabled(true);
  {
    GREENHPC_TRACE_SPAN("obs.test.reset");
  }
  Tracer::set_enabled(false);
  ASSERT_GE(total_events(Tracer::snapshot()), 1u);
  Tracer::reset();
  EXPECT_EQ(total_events(Tracer::snapshot()), 0u);
}

TEST_F(TraceTest, ChromeJsonEscapesAndTimesInMicroseconds) {
  Tracer::set_enabled(true);
  const std::uint64_t begin = Tracer::now_ns();
  Tracer::record_complete("quoted\"name", "greenhpc", begin, begin + 1500);
  Tracer::set_enabled(false);
  std::ostringstream os;
  Tracer::write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("quoted\\\"name"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1.5"), std::string::npos);  // 1500 ns = 1.5 µs
}

// Enabled-overhead sanity guard: an enabled span costs two clock reads
// plus a thread-local ring write. The hard bound is deliberately loose
// (sanitizer builds and shared CI runners are slow); the real measurement
// lives in bench_microbench.
TEST_F(TraceTest, EnabledSpanOverheadIsBounded) {
  constexpr int kIters = 20000;
  Tracer::set_buffer_capacity(1u << 16);
  Tracer::set_enabled(true);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    GREENHPC_TRACE_SPAN("obs.test.overhead");
  }
  const auto t1 = std::chrono::steady_clock::now();
  Tracer::set_enabled(false);
  const double ns_per_span =
      std::chrono::duration<double, std::nano>(t1 - t0).count() / kIters;
  EXPECT_LT(ns_per_span, 20000.0) << "enabled span cost exploded";
}

}  // namespace
}  // namespace greenhpc::obs
