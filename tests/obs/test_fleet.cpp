#include "obs/fleet.hpp"
#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

namespace greenhpc::obs {
namespace {

RemoteTraceEvent ev(std::string name, std::uint64_t ts_ns,
                    std::uint64_t dur_ns = 0, int tid = 0) {
  RemoteTraceEvent e;
  e.name = std::move(name);
  e.cat = "fleet";
  e.tid = tid;
  e.phase = dur_ns == 0 ? 'i' : 'X';
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  return e;
}

TEST(FleetTrace, LanesAreIndependentAndOrdered) {
  FleetTrace ft;
  const int coord = ft.add_lane(100, "coordinator");
  const int w0 = ft.add_lane(200, "worker 0");
  EXPECT_EQ(coord, 0);
  EXPECT_EQ(w0, 1);
  EXPECT_EQ(ft.lane_count(), 2u);
  ft.add_event(coord, ev("coord.spawn", 10));
  ft.add_events(w0, {ev("worker.block", 5, 3)});
  EXPECT_EQ(ft.event_count(coord), 1u);
  EXPECT_EQ(ft.event_count(w0), 1u);
  EXPECT_EQ(ft.events(coord).front().name, "coord.spawn");
  EXPECT_EQ(ft.events(w0).front().name, "worker.block");
}

TEST(FleetTrace, FirstAlignWinsAndMapsWithConstantOffset) {
  FleetTrace ft;
  const int lane = ft.add_lane(42, "worker");
  EXPECT_FALSE(ft.aligned(lane));
  // Before alignment the mapping is the identity (offset 0).
  EXPECT_EQ(ft.map_ns(lane, 1234u), 1234u);
  // Worker clock reads 1000 when coordinator clock reads 5000: offset +4000.
  ft.align(lane, 1000, 5000);
  EXPECT_TRUE(ft.aligned(lane));
  EXPECT_EQ(ft.map_ns(lane, 1000u), 5000u);
  EXPECT_EQ(ft.map_ns(lane, 1500u), 5500u);
  // A second anchor must not re-skew already-mapped history.
  ft.align(lane, 0, 999999);
  EXPECT_EQ(ft.map_ns(lane, 1000u), 5000u);
}

TEST(FleetTrace, NegativeOffsetClampsAtZero) {
  FleetTrace ft;
  const int lane = ft.add_lane(7, "worker");
  // Worker clock ahead of coordinator clock: offset -9000.
  ft.align(lane, 10000, 1000);
  EXPECT_EQ(ft.map_ns(lane, 10000u), 1000u);
  // A remote timestamp from before the coordinator epoch clamps to 0
  // rather than wrapping around std::uint64_t.
  EXPECT_EQ(ft.map_ns(lane, 100u), 0u);
}

TEST(FleetTrace, AddEventsMapsTimestampsThroughLaneOffset) {
  FleetTrace ft;
  const int lane = ft.add_lane(9, "worker");
  ft.align(lane, 100, 600);
  ft.add_events(lane, {ev("a", 100), ev("b", 250, 50)});
  ASSERT_EQ(ft.event_count(lane), 2u);
  EXPECT_EQ(ft.events(lane)[0].ts_ns, 600u);
  EXPECT_EQ(ft.events(lane)[1].ts_ns, 750u);
  EXPECT_EQ(ft.events(lane)[1].dur_ns, 50u);
  ft.add_dropped(lane, 3);
  ft.add_dropped(lane, 4);
  EXPECT_EQ(ft.dropped(lane), 7u);
}

// Property: the per-lane mapping is a single constant offset fixed at
// alignment (with a monotone clamp at 0), so any non-decreasing remote
// timestamp sequence stays non-decreasing after the merge — per-lane
// event order in the fleet trace matches the order each worker saw.
TEST(FleetTrace, MappedTimestampsStayMonotonePerLane) {
  std::mt19937 rng(20260808u);
  std::uniform_int_distribution<std::uint64_t> local_dist(0, 1u << 30);
  std::uniform_int_distribution<std::uint64_t> remote_dist(0, 1u << 30);
  std::uniform_int_distribution<std::uint64_t> step(0, 1u << 20);
  for (int trial = 0; trial < 50; ++trial) {
    FleetTrace ft;
    const int lane = ft.add_lane(1000 + trial, "worker");
    ft.align(lane, remote_dist(rng), local_dist(rng));
    std::uint64_t ts = remote_dist(rng);
    std::vector<RemoteTraceEvent> batch;
    for (int i = 0; i < 64; ++i) {
      ts += step(rng);
      batch.push_back(ev("e", ts));
    }
    ft.add_events(lane, batch);
    const std::vector<RemoteTraceEvent>& merged = ft.events(lane);
    ASSERT_EQ(merged.size(), batch.size());
    for (std::size_t i = 1; i < merged.size(); ++i) {
      ASSERT_GE(merged[i].ts_ns, merged[i - 1].ts_ns)
          << "trial " << trial << " event " << i;
    }
  }
}

TEST(FleetTrace, ChromeJsonNamesEveryLaneEvenWhenEmpty) {
  FleetTrace ft;
  const int coord = ft.add_lane(11, "greenhpc sweep coordinator");
  ft.add_lane(22, "sweep worker 0");  // never receives an event
  ft.add_event(coord, ev("coord.run", 1000, 2000));
  std::ostringstream os;
  ft.write_chrome_json(os);
  const std::string json = os.str();
  // One process_name metadata record per lane, present even for the
  // empty lane so the viewer shows the dead worker's row.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("greenhpc sweep coordinator"), std::string::npos);
  EXPECT_NE(json.find("sweep worker 0"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":11"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":22"), std::string::npos);
  // ts/dur are microseconds in Chrome trace JSON: 1000ns -> 1us.
  EXPECT_NE(json.find("\"name\":\"coord.run\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(FlightRecorder, RecordsInOrderBelowCapacity) {
  FlightRecorder fr(8);
  EXPECT_EQ(fr.capacity(), 8u);
  EXPECT_EQ(fr.size(), 0u);
  fr.record(0.5, "spawn", "worker 0");
  fr.record(1.0, "hello", "pid=42");
  EXPECT_EQ(fr.size(), 2u);
  EXPECT_EQ(fr.total(), 2u);
  EXPECT_EQ(fr.dropped(), 0u);
  const std::vector<FlightEvent> evs = fr.events();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].kind, "spawn");
  EXPECT_EQ(evs[1].kind, "hello");
  EXPECT_DOUBLE_EQ(evs[1].t_s, 1.0);
}

TEST(FlightRecorder, RingWrapKeepsTheLastCapacityEvents) {
  FlightRecorder fr(4);
  for (int i = 0; i < 10; ++i) {
    fr.record(static_cast<double>(i), "k" + std::to_string(i));
  }
  EXPECT_EQ(fr.size(), 4u);
  EXPECT_EQ(fr.total(), 10u);
  EXPECT_EQ(fr.dropped(), 6u);
  const std::vector<FlightEvent> evs = fr.events();
  ASSERT_EQ(evs.size(), 4u);
  // Oldest surviving first: events 6..9.
  EXPECT_EQ(evs.front().kind, "k6");
  EXPECT_EQ(evs.back().kind, "k9");
}

TEST(FlightRecorder, JsonlCarriesGlobalSequenceNumbers) {
  FlightRecorder fr(2);
  fr.record(0.25, "a", "first");
  fr.record(0.50, "b", "with \"quotes\" and \\slash");
  fr.record(0.75, "c", "last");
  std::ostringstream os;
  fr.write_jsonl(os);
  const std::string out = os.str();
  // Two surviving events (capacity 2), seq numbers 1 and 2 — the dump
  // says exactly how much history the ring shed.
  EXPECT_EQ(out.find("\"seq\":0"), std::string::npos);
  EXPECT_NE(out.find("\"seq\":1"), std::string::npos);
  EXPECT_NE(out.find("\"seq\":2"), std::string::npos);
  EXPECT_NE(out.find("\"kind\":\"b\""), std::string::npos);
  EXPECT_NE(out.find("\"kind\":\"c\""), std::string::npos);
  // JSON string escaping survives round-tripping through detail text.
  EXPECT_NE(out.find("with \\\"quotes\\\" and \\\\slash"), std::string::npos);
  // One object per line, every line a complete object.
  const std::size_t lines =
      static_cast<std::size_t>(std::count(out.begin(), out.end(), '\n'));
  EXPECT_EQ(lines, 2u);
}

}  // namespace
}  // namespace greenhpc::obs
