#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

namespace greenhpc::obs {
namespace {

TEST(MetricsCounter, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsCounter, ConcurrentIncrementsAllLand) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsGauge, SetAddValue) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(MetricsGauge, ConcurrentAddsSumExactly) {
  Gauge g;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.add(1.0);  // exact in double
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads * kPerThread));
}

TEST(MetricsHistogram, BucketsAndOverflow) {
  Histogram h({1.0, 10.0, 100.0});
  h.record(0.5);    // <= 1
  h.record(1.0);    // <= 1 (inclusive upper bound)
  h.record(5.0);    // <= 10
  h.record(1000.0); // overflow
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(MetricsHistogram, PercentileIsZeroWhenEmpty) {
  Histogram h({1.0, 2.0});
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);
}

TEST(MetricsHistogram, PercentileInterpolatesWithinABucket) {
  // 100 samples, all in the (1, 2] bucket: the quantile moves linearly
  // across that bucket's span regardless of where the samples really sat.
  Histogram h({1.0, 2.0, 4.0});
  for (int i = 0; i < 100; ++i) h.record(1.5);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);   // rank 0 -> lower edge
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 1.5);   // halfway across the bucket
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 2.0);   // full rank -> upper bound
}

TEST(MetricsHistogram, PercentileSpansBucketsByCount) {
  // 3 samples <= 1 and 1 sample in (1, 2]: p50 (rank 2 of 4) lands
  // inside the first bucket, p99 inside the second.
  Histogram h({1.0, 2.0});
  h.record(0.5);
  h.record(0.5);
  h.record(0.5);
  h.record(1.5);
  const double p50 = h.percentile(0.5);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, 1.0);
  const double p99 = h.percentile(0.99);
  EXPECT_GT(p99, 1.0);
  EXPECT_LE(p99, 2.0);
}

TEST(MetricsHistogram, PercentileClampsQAndSaturatesOverflow) {
  Histogram h({1.0, 8.0});
  h.record(100.0);  // overflow bucket only
  // Every quantile of an all-overflow histogram saturates to the last
  // finite bound; out-of-range q is clamped, never UB.
  EXPECT_DOUBLE_EQ(h.percentile(-1.0), h.percentile(0.0));
  EXPECT_DOUBLE_EQ(h.percentile(2.0), h.percentile(1.0));
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 8.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 8.0);
}

TEST(MetricsHistogram, SnapshotPercentileMatchesLiveHistogram) {
  Registry reg;
  Histogram& h = reg.histogram("h.pct", {0.001, 0.01, 0.1, 1.0});
  for (int i = 0; i < 32; ++i) h.record(0.004);
  for (int i = 0; i < 4; ++i) h.record(0.5);
  const StatSnapshot snap = reg.snapshot();
  const HistogramSnapshot* hs = snap.find_histogram("h.pct");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->total(), 36u);
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(hs->percentile(q), h.percentile(q)) << "q=" << q;
  }
}

TEST(MetricsRegistry, SnapshotFindersLocateEveryKind) {
  Registry reg;
  reg.counter("snap.c").add(5);
  reg.gauge("snap.g").set(-2.5);
  reg.histogram("snap.h", {1.0}).record(0.25);
  const StatSnapshot snap = reg.snapshot();
  const std::uint64_t* c = snap.find_counter("snap.c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(*c, 5u);
  const double* g = snap.find_gauge("snap.g");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(*g, -2.5);
  ASSERT_NE(snap.find_histogram("snap.h"), nullptr);
  EXPECT_EQ(snap.find_counter("snap.missing"), nullptr);
  EXPECT_EQ(snap.find_gauge("snap.missing"), nullptr);
  EXPECT_EQ(snap.find_histogram("snap.missing"), nullptr);
}

TEST(MetricsRegistry, LookupReturnsStableReferences) {
  Registry reg;
  Counter& a = reg.counter("obs.test.stable");
  a.add(3);
  Counter& b = reg.counter("obs.test.stable");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
  // reset() zeroes values but keeps the objects (and references) alive.
  reg.reset();
  EXPECT_EQ(a.value(), 0u);
  a.add();
  EXPECT_EQ(reg.counter("obs.test.stable").value(), 1u);
}

TEST(MetricsRegistry, JsonSnapshotContainsAllKinds) {
  Registry reg;
  reg.counter("c.one").add(7);
  reg.gauge("g.one").set(1.25);
  reg.histogram("h.one", {2.0}).record(1.0);
  std::ostringstream os;
  reg.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"c.one\":7"), std::string::npos);
  EXPECT_NE(json.find("\"g.one\":1.25"), std::string::npos);
  EXPECT_NE(json.find("\"h.one\":{\"bounds\":[2]"), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(MetricsRegistry, CsvSnapshotHasHeaderAndRows) {
  Registry reg;
  reg.counter("c.two").add(9);
  reg.histogram("h.two", {1.0}).record(0.5);
  std::ostringstream os;
  reg.write_csv(os);
  const std::string csv = os.str();
  EXPECT_EQ(csv.rfind("kind,name,value\n", 0), 0u);
  EXPECT_NE(csv.find("counter,c.two,9"), std::string::npos);
  EXPECT_NE(csv.find("histogram,h.two[le=1],1"), std::string::npos);
  EXPECT_NE(csv.find("histogram,h.two[le=inf],0"), std::string::npos);
}

TEST(MetricsRegistry, SizeCountsEveryKind) {
  Registry reg;
  EXPECT_EQ(reg.size(), 0u);
  reg.counter("a");
  reg.gauge("b");
  reg.histogram("c", {1.0});
  reg.counter("a");  // idempotent
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistry, GlobalIsASingleton) {
  EXPECT_EQ(&Registry::global(), &Registry::global());
}

}  // namespace
}  // namespace greenhpc::obs
