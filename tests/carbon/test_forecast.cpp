#include "carbon/forecast.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "carbon/grid_model.hpp"
#include "util/error.hpp"

namespace greenhpc::carbon {
namespace {

/// Pure sinusoid with a 24h period around `mean`.
util::TimeSeries sinusoid(double mean, double amp, Duration span,
                          Duration step = minutes(30.0)) {
  util::TimeSeries ts(seconds(0.0), step);
  const auto n = static_cast<std::size_t>(span.seconds() / step.seconds());
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * step.seconds();
    ts.push_back(mean + amp * std::sin(2.0 * std::numbers::pi * t / 86400.0));
  }
  return ts;
}

TEST(Persistence, ExactOnPerfectlyPeriodicSignal) {
  const auto truth = sinusoid(300.0, 80.0, days(5.0));
  PersistenceForecaster f;
  const double err = evaluate_mape(f, truth, days(2.0), hours(6.0));
  EXPECT_LT(err, 0.002);
}

TEST(Persistence, HandlesHorizonsBeyondOneDay) {
  const auto truth = sinusoid(300.0, 80.0, days(6.0));
  PersistenceForecaster f;
  const util::TimeSeries hist = truth.slice(0, truth.size() / 2);
  const double pred = f.forecast(hist, hist.end(), hours(30.0));
  // Same time of day 30h ahead equals value 6h ahead of now yesterday.
  EXPECT_NEAR(pred, truth.sample_at_clamped(hist.end() + hours(30.0)), 1.0);
}

TEST(MovingAverage, FlatSignalIsExact) {
  const auto truth = sinusoid(250.0, 0.0, days(3.0));
  MovingAverageForecaster f(hours(12.0));
  const double err = evaluate_mape(f, truth, days(1.0), hours(1.0));
  EXPECT_LT(err, 1e-9);
}

TEST(MovingAverage, NameIncludesWindow) {
  MovingAverageForecaster f(hours(6.0));
  EXPECT_EQ(f.name(), "moving-average-6h");
}

TEST(Harmonic, RecoversSinusoidWellAheadOfPersistenceOnNoise) {
  // On a periodic signal + noise, the harmonic fit should beat the
  // moving average clearly.
  GridModel model(Region::Germany, 17);
  const auto truth = model.generate(seconds(0.0), days(10.0), minutes(30.0));
  HarmonicForecaster harmonic(days(3.0));
  MovingAverageForecaster mavg(hours(24.0));
  const double err_h = evaluate_mape(harmonic, truth, days(4.0), hours(6.0));
  const double err_m = evaluate_mape(mavg, truth, days(4.0), hours(6.0));
  EXPECT_LT(err_h, err_m * 1.05);
  EXPECT_LT(err_h, 0.30);
}

TEST(Harmonic, ExactOnNoiselessHarmonicSignal) {
  const auto truth = sinusoid(300.0, 60.0, days(6.0));
  HarmonicForecaster f(days(2.0));
  const double err = evaluate_mape(f, truth, days(3.0), hours(12.0));
  // The level-anchoring term introduces a small zero-order-hold bias even
  // on a noiseless signal; accuracy remains ~2%.
  EXPECT_LT(err, 0.02);
}

TEST(Ewma, FlatSignalIsExact) {
  const auto truth = sinusoid(250.0, 0.0, days(3.0));
  EwmaForecaster f(hours(6.0));
  const double err = evaluate_mape(f, truth, days(1.0), hours(1.0));
  EXPECT_LT(err, 1e-9);
}

TEST(Ewma, TracksLevelShiftsFasterThanMovingAverage) {
  // Step signal: 200 for two days, then 400. Shortly after the step the
  // EWMA (recency-weighted) must sit closer to 400 than the same-length
  // moving average.
  util::TimeSeries ts(seconds(0.0), hours(1.0));
  for (int i = 0; i < 96; ++i) ts.push_back(i < 48 ? 200.0 : 400.0);
  EwmaForecaster ewma(hours(8.0));
  MovingAverageForecaster mavg(hours(24.0));
  const Duration now = hours(60.0);  // 12h after the step
  const double e = ewma.forecast(ts, now, hours(1.0));
  const double m = mavg.forecast(ts, now, hours(1.0));
  EXPECT_GT(e, m);
  EXPECT_GT(e, 320.0);  // ~329 analytically: 400 - 200 * 2^(-12h/8h)
}

TEST(Ewma, NameAndPreconditions) {
  EXPECT_EQ(EwmaForecaster(hours(6.0)).name(), "ewma-6h");
  EXPECT_THROW(EwmaForecaster(seconds(0.0)), greenhpc::InvalidArgument);
}

TEST(Ensemble, AveragesMembers) {
  const auto truth = sinusoid(300.0, 0.0, days(2.0));
  auto a = std::make_shared<MovingAverageForecaster>(hours(6.0));
  auto b = std::make_shared<EwmaForecaster>(hours(6.0));
  EnsembleForecaster ens({{a, 1.0}, {b, 3.0}});
  const double v = ens.forecast(truth, days(1.0), hours(1.0));
  EXPECT_NEAR(v, 300.0, 1e-9);  // both members agree on a flat signal
  EXPECT_NE(ens.name().find("ensemble("), std::string::npos);
}

TEST(Ensemble, BetweenItsMembers) {
  GridModel model(Region::Germany, 21);
  const auto truth = model.generate(seconds(0.0), days(8.0), hours(1.0));
  auto level = std::make_shared<EwmaForecaster>(hours(12.0));
  auto shape = std::make_shared<PersistenceForecaster>();
  EnsembleForecaster ens({{level, 1.0}, {shape, 1.0}});
  const Duration now = days(5.0);
  const double v_l = level->forecast(truth, now, hours(6.0));
  const double v_s = shape->forecast(truth, now, hours(6.0));
  const double v_e = ens.forecast(truth, now, hours(6.0));
  EXPECT_GE(v_e, std::min(v_l, v_s) - 1e-9);
  EXPECT_LE(v_e, std::max(v_l, v_s) + 1e-9);
}

TEST(Ensemble, Preconditions) {
  EXPECT_THROW(EnsembleForecaster({}), greenhpc::InvalidArgument);
  EXPECT_THROW(EnsembleForecaster({{nullptr, 1.0}}), greenhpc::InvalidArgument);
  auto a = std::make_shared<PersistenceForecaster>();
  EXPECT_THROW(EnsembleForecaster({{a, 0.0}}), greenhpc::InvalidArgument);
}

TEST(Oracle, PerfectByConstruction) {
  GridModel model(Region::Finland, 3);
  const auto truth = model.generate(seconds(0.0), days(7.0), hours(1.0));
  OracleForecaster f(truth);
  const double err = evaluate_mape(f, truth, days(1.0), hours(8.0));
  EXPECT_DOUBLE_EQ(err, 0.0);
}

TEST(Oracle, ClampsBeyondTruth) {
  const auto truth = sinusoid(100.0, 10.0, days(1.0));
  OracleForecaster f(truth);
  const double beyond = f.forecast(truth, truth.end(), days(5.0));
  EXPECT_DOUBLE_EQ(beyond, truth.at(truth.size() - 1));
}

TEST(Forecasters, OracleBeatsRealForecastersOnNoisyTrace) {
  GridModel model(Region::UnitedKingdom, 23);
  const auto truth = model.generate(seconds(0.0), days(10.0), hours(1.0));
  const OracleForecaster oracle(truth);
  const PersistenceForecaster persistence;
  const double err_o = evaluate_mape(oracle, truth, days(3.0), hours(12.0));
  const double err_p = evaluate_mape(persistence, truth, days(3.0), hours(12.0));
  EXPECT_LT(err_o, err_p);
}

TEST(Forecasters, NegativeHorizonThrows) {
  const auto truth = sinusoid(100.0, 10.0, days(2.0));
  PersistenceForecaster p;
  EXPECT_THROW((void)p.forecast(truth, days(1.0), hours(-1.0)),
               greenhpc::InvalidArgument);
  OracleForecaster o(truth);
  EXPECT_THROW((void)o.forecast(truth, days(1.0), hours(-1.0)),
               greenhpc::InvalidArgument);
}

TEST(Forecasters, ConstructionPreconditions) {
  EXPECT_THROW(MovingAverageForecaster(seconds(0.0)), greenhpc::InvalidArgument);
  EXPECT_THROW(HarmonicForecaster(minutes(10.0)), greenhpc::InvalidArgument);
  EXPECT_THROW(OracleForecaster(util::TimeSeries(seconds(0.0), hours(1.0))),
               greenhpc::InvalidArgument);
}

}  // namespace
}  // namespace greenhpc::carbon
