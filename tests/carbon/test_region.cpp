#include "carbon/region.hpp"

#include <gtest/gtest.h>

#include <set>

namespace greenhpc::carbon {
namespace {

TEST(Region, AllRegionsAreDistinct) {
  std::set<std::string_view> names;
  for (Region r : all_regions()) names.insert(name(r));
  EXPECT_EQ(names.size(), all_regions().size());
}

TEST(Region, TraitsAreInternallyConsistent) {
  for (Region r : all_regions()) {
    const RegionTraits& t = traits(r);
    EXPECT_GT(t.mean_gkwh, 0.0) << t.name;
    EXPECT_GT(t.cap_gkwh, t.floor_gkwh) << t.name;
    EXPECT_GE(t.mean_gkwh, t.floor_gkwh) << t.name;
    EXPECT_LE(t.mean_gkwh, t.cap_gkwh) << t.name;
    EXPECT_GT(t.ou_tau_hours, 0.0) << t.name;
    EXPECT_GE(t.ou_sigma, 0.0) << t.name;
    EXPECT_GE(t.marginal_uplift, 1.0) << t.name;
    EXPECT_GT(t.weekend_factor, 0.0) << t.name;
    EXPECT_LE(t.weekend_factor, 1.0) << t.name;
  }
}

TEST(Region, PaperCalibrationAnchors) {
  // Finland averages ~2.1x France (paper, section 3).
  const double ratio = traits(Region::Finland).mean_gkwh / traits(Region::France).mean_gkwh;
  EXPECT_NEAR(ratio, 2.1, 0.05);
  // Coal-dominated Poland approaches the paper's 1025 g/kWh coal figure at
  // its cap.
  EXPECT_NEAR(traits(Region::Poland).cap_gkwh, 1025.0, 1.0);
}

TEST(Region, OrderingMatchesEuropeanGrids) {
  // Hydro/nuclear regions clean, coal regions dirty.
  EXPECT_LT(traits(Region::Norway).mean_gkwh, traits(Region::Sweden).mean_gkwh);
  EXPECT_LT(traits(Region::Sweden).mean_gkwh, traits(Region::France).mean_gkwh);
  EXPECT_LT(traits(Region::France).mean_gkwh, traits(Region::Finland).mean_gkwh);
  EXPECT_LT(traits(Region::Finland).mean_gkwh, traits(Region::Germany).mean_gkwh);
  EXPECT_LT(traits(Region::Germany).mean_gkwh, traits(Region::Poland).mean_gkwh);
}

TEST(Region, NamesAndCodes) {
  EXPECT_EQ(name(Region::France), "France");
  EXPECT_EQ(traits(Region::UnitedKingdom).code, "UK");
  EXPECT_EQ(traits(Region::Finland).code, "FI");
}

}  // namespace
}  // namespace greenhpc::carbon
