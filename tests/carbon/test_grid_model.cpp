#include "carbon/grid_model.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace greenhpc::carbon {
namespace {

TEST(GridModel, DeterministicForSeed) {
  GridModel a(Region::Germany, 99);
  GridModel b(Region::Germany, 99);
  const auto ta = a.generate(seconds(0.0), days(2.0), hours(1.0));
  const auto tb = b.generate(seconds(0.0), days(2.0), hours(1.0));
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) EXPECT_DOUBLE_EQ(ta.at(i), tb.at(i));
}

TEST(GridModel, DifferentSeedsDiffer) {
  GridModel a(Region::Germany, 1);
  GridModel b(Region::Germany, 2);
  const auto ta = a.generate(seconds(0.0), days(2.0), hours(1.0));
  const auto tb = b.generate(seconds(0.0), days(2.0), hours(1.0));
  double diff = 0.0;
  for (std::size_t i = 0; i < ta.size(); ++i) diff += std::fabs(ta.at(i) - tb.at(i));
  EXPECT_GT(diff, 1.0);
}

TEST(GridModel, ValuesRespectFloorAndCap) {
  for (Region r : all_regions()) {
    GridModel model(r, 5);
    const auto trace = model.generate(seconds(0.0), days(30.0), hours(1.0));
    const RegionTraits& t = traits(r);
    for (double v : trace.values()) {
      EXPECT_GE(v, t.floor_gkwh) << t.name;
      EXPECT_LE(v, t.cap_gkwh * t.marginal_uplift + 1e-9) << t.name;
    }
  }
}

TEST(GridModel, AverageTraceMatchesRegionMean) {
  // Multi-seed long-run mean should sit near the preset mean.
  util::RunningStats s;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    GridModel model(Region::Germany, seed);
    const auto trace = model.generate(seconds(0.0), days(60.0), hours(1.0));
    s.add(trace.summary().mean);
  }
  EXPECT_NEAR(s.mean() / traits(Region::Germany).mean_gkwh, 1.0, 0.10);
}

TEST(GridModel, MarginalIsDirtierThanAverage) {
  GridModel avg_model(Region::Germany, 7);
  GridModel marg_model(Region::Germany, 7);
  const auto avg = avg_model.generate(seconds(0.0), days(14.0), hours(1.0),
                                      IntensityKind::Average);
  const auto marg = marg_model.generate(seconds(0.0), days(14.0), hours(1.0),
                                        IntensityKind::Marginal);
  EXPECT_GT(marg.summary().mean, avg.summary().mean * 1.05);
}

TEST(GridModel, DiurnalShapeVisibleInDeterministicComponent) {
  GridModel model(Region::Germany, 3);
  // Peak hour should exceed 4am on a weekday (day 1 = Monday).
  const double peak = model.deterministic_component(days(1.0) + hours(18.5));
  const double trough = model.deterministic_component(days(1.0) + hours(4.0));
  EXPECT_GT(peak, trough);
  // Solar dip: the midday value must sit below what the model would give
  // without solar displacement.
  RegionTraits no_solar = traits(Region::Germany);
  no_solar.solar_depth = 0.0;
  GridModel bare(no_solar, 3);
  const double with_solar = model.deterministic_component(days(1.0) + hours(13.0));
  const double without_solar = bare.deterministic_component(days(1.0) + hours(13.0));
  EXPECT_LT(with_solar, without_solar - 0.5 * traits(Region::Germany).solar_depth);
}

TEST(GridModel, WeekendsAreCleaner) {
  GridModel model(Region::Germany, 3);
  // Day 0 is a Sunday, day 1 a Monday; compare the same hour.
  const double sunday = model.deterministic_component(hours(18.0));
  const double monday = model.deterministic_component(days(1.0) + hours(18.0));
  EXPECT_LT(sunday, monday);
}

TEST(GridModel, Fig2CalibrationFinlandVsFrance) {
  // The paper's two quantitative anchors for Fig. 2 (January 2023):
  // Finland ~2.1x France monthly mean; Finland daily-mean sigma ~47.21.
  util::RunningStats ratio_stats, sigma_stats;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    GridModel fr(Region::France, seed * 3 + 1);
    GridModel fi(Region::Finland, seed * 7 + 2);
    const auto fr_trace =
        fr.generate(seconds(0.0), days(31.0), hours(1.0), IntensityKind::Marginal);
    const auto fi_trace =
        fi.generate(seconds(0.0), days(31.0), hours(1.0), IntensityKind::Marginal);
    ratio_stats.add(fi_trace.summary().mean / fr_trace.summary().mean);
    sigma_stats.add(fi_trace.daily_mean().summary().stddev);
  }
  EXPECT_NEAR(ratio_stats.mean(), 2.1, 0.35);
  EXPECT_NEAR(sigma_stats.mean(), 47.21, 20.0);
}

TEST(GridModel, EuropeanBundleCoversAllRegions) {
  const RegionalTraces bundle =
      generate_european_traces(seconds(0.0), days(31.0), hours(1.0), 42);
  ASSERT_EQ(bundle.regions.size(), all_regions().size());
  ASSERT_EQ(bundle.series.size(), all_regions().size());
  for (const auto& ts : bundle.series) {
    EXPECT_EQ(ts.size(), 31u * 24u);
  }
}

TEST(GridModel, BundleReproducibleFromSeed) {
  const auto a = generate_european_traces(seconds(0.0), days(3.0), hours(1.0), 7);
  const auto b = generate_european_traces(seconds(0.0), days(3.0), hours(1.0), 7);
  for (std::size_t r = 0; r < a.series.size(); ++r) {
    for (std::size_t i = 0; i < a.series[r].size(); ++i) {
      EXPECT_DOUBLE_EQ(a.series[r].at(i), b.series[r].at(i));
    }
  }
}

TEST(GridModel, InvalidArgumentsThrow) {
  GridModel model(Region::France, 1);
  EXPECT_THROW((void)model.generate(seconds(0.0), seconds(0.0), hours(1.0)),
               greenhpc::InvalidArgument);
  EXPECT_THROW((void)model.generate(seconds(0.0), hours(1.0), seconds(0.0)),
               greenhpc::InvalidArgument);
  RegionTraits bad = traits(Region::France);
  bad.cap_gkwh = bad.floor_gkwh;
  EXPECT_THROW(GridModel(bad, 1), greenhpc::InvalidArgument);
}

}  // namespace
}  // namespace greenhpc::carbon
