#include "carbon/trace_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <thread>
#include <vector>

namespace greenhpc::carbon {
namespace {

std::uint64_t trace_digest(const util::TimeSeries& ts) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](double v) {
    const auto bits = std::bit_cast<std::uint64_t>(v);
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  mix(ts.start().seconds());
  mix(ts.step().seconds());
  for (const double v : ts.values()) mix(v);
  return h;
}

TEST(TraceCache, HitIsPointerIdentical) {
  TraceCache cache;
  const auto a = cache.get(Region::Germany, IntensityKind::Average, 7, seconds(0.0),
                           days(2.0), minutes(30.0));
  const auto b = cache.get(Region::Germany, IntensityKind::Average, 7, seconds(0.0),
                           days(2.0), minutes(30.0));
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(TraceCache, DistinctKeysGetDistinctTraces) {
  TraceCache cache;
  const auto base = cache.get(Region::Germany, IntensityKind::Average, 7, seconds(0.0),
                              days(2.0), minutes(30.0));
  // Each key component must participate in the identity.
  EXPECT_NE(base.get(), cache.get(Region::France, IntensityKind::Average, 7,
                                  seconds(0.0), days(2.0), minutes(30.0)).get());
  EXPECT_NE(base.get(), cache.get(Region::Germany, IntensityKind::Marginal, 7,
                                  seconds(0.0), days(2.0), minutes(30.0)).get());
  EXPECT_NE(base.get(), cache.get(Region::Germany, IntensityKind::Average, 8,
                                  seconds(0.0), days(2.0), minutes(30.0)).get());
  EXPECT_NE(base.get(), cache.get(Region::Germany, IntensityKind::Average, 7,
                                  seconds(0.0), days(3.0), minutes(30.0)).get());
  EXPECT_NE(base.get(), cache.get(Region::Germany, IntensityKind::Average, 7,
                                  seconds(0.0), days(2.0), minutes(15.0)).get());
  EXPECT_EQ(cache.size(), 6u);
  EXPECT_EQ(cache.misses(), 6u);
}

TEST(TraceCache, CachedTraceMatchesFreshGenerateBitForBit) {
  // The cache must be transparent: a cached trace is value-identical to
  // generating with the same parameters directly.
  TraceCache cache;
  const auto cached = cache.get(Region::Poland, IntensityKind::Marginal, 99,
                                seconds(0.0), days(1.5), minutes(15.0));
  GridModel model(Region::Poland, 99);
  const util::TimeSeries fresh =
      model.generate(seconds(0.0), days(1.5), minutes(15.0), IntensityKind::Marginal);
  ASSERT_EQ(cached->size(), fresh.size());
  EXPECT_EQ(trace_digest(*cached), trace_digest(fresh));
}

TEST(TraceCache, ClearDropsEntriesButKeepsOutstandingPointers) {
  TraceCache cache;
  const auto held = cache.get(Region::Sweden, IntensityKind::Average, 1, seconds(0.0),
                              days(1.0), minutes(60.0));
  const std::uint64_t digest = trace_digest(*held);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  // The shared pointer keeps the trace alive and untouched.
  EXPECT_EQ(trace_digest(*held), digest);
  // Re-requesting regenerates an equal trace (new allocation).
  const auto again = cache.get(Region::Sweden, IntensityKind::Average, 1, seconds(0.0),
                               days(1.0), minutes(60.0));
  EXPECT_NE(again.get(), held.get());
  EXPECT_EQ(trace_digest(*again), digest);
}

TEST(TraceCache, ConcurrentLookupsConvergeOnOnePointer) {
  // Hammer one cold key plus a few distinct keys from many threads: every
  // thread asking for the same key must end up with the same pointer, and
  // the cache must hold exactly one entry per distinct key.
  TraceCache cache;
  constexpr int kThreads = 8;
  constexpr int kKeys = 4;
  std::vector<std::vector<const util::TimeSeries*>> seen(
      kThreads, std::vector<const util::TimeSeries*>(kKeys, nullptr));
  std::atomic<int> start_gate{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start_gate.fetch_add(1);
      while (start_gate.load() < kThreads) {
      }
      for (int k = 0; k < kKeys; ++k) {
        const auto trace =
            cache.get(Region::Germany, IntensityKind::Average,
                      static_cast<std::uint64_t>(k), seconds(0.0), days(1.0),
                      minutes(60.0));
        seen[static_cast<std::size_t>(t)][static_cast<std::size_t>(k)] = trace.get();
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int k = 0; k < kKeys; ++k) {
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(seen[static_cast<std::size_t>(t)][static_cast<std::size_t>(k)],
                seen[0][static_cast<std::size_t>(k)])
          << "thread " << t << " key " << k;
    }
  }
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(kKeys));
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::size_t>(kThreads) * kKeys);
}

TEST(TraceCache, GlobalIsASingleton) {
  EXPECT_EQ(&TraceCache::global(), &TraceCache::global());
}

}  // namespace
}  // namespace greenhpc::carbon
