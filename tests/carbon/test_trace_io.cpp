#include "carbon/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "carbon/grid_model.hpp"
#include "util/error.hpp"

namespace greenhpc::carbon {
namespace {

TEST(TraceIo, ParsesPlainCsv) {
  std::istringstream in("0,100\n900,150\n1800,125\n");
  const auto ts = load_intensity_csv(in);
  ASSERT_EQ(ts.size(), 3u);
  EXPECT_DOUBLE_EQ(ts.start().seconds(), 0.0);
  EXPECT_DOUBLE_EQ(ts.step().seconds(), 900.0);
  EXPECT_DOUBLE_EQ(ts.at(1), 150.0);
}

TEST(TraceIo, SkipsHeaderAndComments) {
  std::istringstream in(
      "timestamp_s,intensity_g_per_kwh\n"
      "# exported from the grid feed\n"
      "3600,80\n"
      "7200,90  # midday dip ends\n");
  const auto ts = load_intensity_csv(in);
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_DOUBLE_EQ(ts.start().hours(), 1.0);
  EXPECT_DOUBLE_EQ(ts.at(1), 90.0);
}

TEST(TraceIo, RoundTripsGeneratedTrace) {
  GridModel model(Region::Finland, 9);
  const auto original = model.generate(seconds(0.0), days(2.0), minutes(30.0));
  std::stringstream buffer;
  save_intensity_csv(original, buffer);
  const auto loaded = load_intensity_csv(buffer);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_DOUBLE_EQ(loaded.step().seconds(), original.step().seconds());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(loaded.at(i), original.at(i), 1e-3 * original.at(i));
  }
}

TEST(TraceIo, RejectsMalformedInput) {
  {
    std::istringstream in("justonevalue\n0,100\n900,100\nmore,garbage,here\n");
    EXPECT_THROW((void)load_intensity_csv(in), greenhpc::InvalidArgument);
  }
  {
    std::istringstream in("0,100\n");  // single sample
    EXPECT_THROW((void)load_intensity_csv(in), greenhpc::InvalidArgument);
  }
  {
    std::istringstream in("0,100\n900,100\n2700,100\n");  // unequal spacing
    EXPECT_THROW((void)load_intensity_csv(in), greenhpc::InvalidArgument);
  }
  {
    std::istringstream in("0,100\n900,-5\n");  // negative intensity
    EXPECT_THROW((void)load_intensity_csv(in), greenhpc::InvalidArgument);
  }
  {
    std::istringstream in("900,100\n0,100\n");  // descending
    EXPECT_THROW((void)load_intensity_csv(in), greenhpc::InvalidArgument);
  }
}

TEST(TraceIo, RejectsNonFiniteValues) {
  // strtod happily parses "nan" and "inf"; the loader must not let either
  // poison a trace (inf used to slip past the plain v >= 0 check).
  for (const char* bad :
       {"0,100\n900,nan\n", "0,100\n900,inf\n", "0,100\n900,-inf\n",
        "0,nan\n900,100\n", "nan,100\n900,100\n", "0,100\ninf,100\n"}) {
    std::istringstream in(bad);
    try {
      (void)load_intensity_csv(in);
      FAIL() << "accepted: " << bad;
    } catch (const greenhpc::InvalidArgument& e) {
      EXPECT_TRUE(std::string(e.what()).find("non-finite") != std::string::npos ||
                  std::string(e.what()).find("ascend") != std::string::npos)
          << e.what();
    }
  }
}

TEST(TraceIo, EmptyInputThrows) {
  std::istringstream in("# nothing but comments\n");
  EXPECT_THROW((void)load_intensity_csv(in), greenhpc::InvalidArgument);
}

}  // namespace
}  // namespace greenhpc::carbon
