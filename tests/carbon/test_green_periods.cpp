#include "carbon/green_periods.hpp"

#include <gtest/gtest.h>

#include "carbon/grid_model.hpp"
#include "util/error.hpp"

namespace greenhpc::carbon {
namespace {

util::TimeSeries square(double lo, double hi, int cycles, Duration half,
                        Duration step = minutes(15.0)) {
  util::TimeSeries ts(seconds(0.0), step);
  const auto per_half = static_cast<std::size_t>(half.seconds() / step.seconds());
  for (int c = 0; c < cycles; ++c) {
    for (std::size_t i = 0; i < per_half; ++i) ts.push_back(lo);
    for (std::size_t i = 0; i < per_half; ++i) ts.push_back(hi);
  }
  return ts;
}

TEST(GreenPeriods, ThresholdIsQuantile) {
  const auto ts = square(100.0, 300.0, 4, hours(6.0));
  EXPECT_DOUBLE_EQ(green_threshold(ts, 0.5), 200.0);
  EXPECT_DOUBLE_EQ(green_threshold(ts, 0.25), 100.0);
}

TEST(GreenPeriods, FindsSquareWaveWindows) {
  const auto ts = square(100.0, 300.0, 3, hours(6.0));
  const auto windows = find_green_windows(ts, 150.0);
  ASSERT_EQ(windows.size(), 3u);
  for (const auto& w : windows) {
    EXPECT_DOUBLE_EQ(w.length().hours(), 6.0);
    EXPECT_DOUBLE_EQ(w.mean_intensity, 100.0);
  }
  EXPECT_DOUBLE_EQ(windows[0].start.hours(), 0.0);
  EXPECT_DOUBLE_EQ(windows[1].start.hours(), 12.0);
}

TEST(GreenPeriods, MinLengthFiltersShortWindows) {
  const auto ts = square(100.0, 300.0, 3, hours(2.0));
  EXPECT_EQ(find_green_windows(ts, 150.0, hours(3.0)).size(), 0u);
  EXPECT_EQ(find_green_windows(ts, 150.0, hours(2.0)).size(), 3u);
}

TEST(GreenPeriods, WindowOpenAtSeriesEndIsClosed) {
  util::TimeSeries ts(seconds(0.0), hours(1.0), {300.0, 300.0, 100.0, 100.0});
  const auto windows = find_green_windows(ts, 150.0);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_DOUBLE_EQ(windows[0].start.hours(), 2.0);
  EXPECT_DOUBLE_EQ(windows[0].end.hours(), 4.0);
}

TEST(GreenPeriods, NoWindowsAboveThreshold) {
  util::TimeSeries ts(seconds(0.0), hours(1.0), {300.0, 280.0});
  EXPECT_TRUE(find_green_windows(ts, 100.0).empty());
}

TEST(GreenPeriods, GreenFraction) {
  const auto ts = square(100.0, 300.0, 5, hours(6.0));
  EXPECT_DOUBLE_EQ(green_fraction(ts, 150.0), 0.5);
  EXPECT_DOUBLE_EQ(green_fraction(ts, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(green_fraction(ts, 400.0), 1.0);
}

TEST(GreenPeriods, InGreenWindowLookup) {
  const auto ts = square(100.0, 300.0, 2, hours(6.0));
  const auto windows = find_green_windows(ts, 150.0);
  EXPECT_TRUE(in_green_window(windows, hours(3.0)));
  EXPECT_FALSE(in_green_window(windows, hours(9.0)));
  EXPECT_TRUE(in_green_window(windows, hours(13.0)));
  EXPECT_FALSE(in_green_window(windows, hours(6.0)));  // boundary: end-exclusive
}

TEST(GreenPeriods, RealisticTraceHasGreenWindows) {
  GridModel model(Region::Germany, 11);
  const auto trace = model.generate(seconds(0.0), days(14.0), minutes(30.0));
  const double threshold = green_threshold(trace, 0.3);
  const auto windows = find_green_windows(trace, threshold, hours(1.0));
  EXPECT_GE(windows.size(), 3u);
  EXPECT_NEAR(green_fraction(trace, threshold), 0.3, 0.05);
}

TEST(GreenPeriods, EmptySeriesThrows) {
  util::TimeSeries ts(seconds(0.0), hours(1.0));
  EXPECT_THROW((void)green_threshold(ts, 0.5), greenhpc::InvalidArgument);
  EXPECT_THROW((void)green_fraction(ts, 100.0), greenhpc::InvalidArgument);
}

}  // namespace
}  // namespace greenhpc::carbon
