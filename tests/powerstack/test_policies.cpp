#include "powerstack/policies.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace greenhpc::powerstack {
namespace {

hpcsim::ClusterConfig cluster() {
  hpcsim::ClusterConfig c;
  c.nodes = 100;
  c.node_tdp = watts(500.0);
  c.node_idle = watts(100.0);
  return c;  // max power 50 kW
}

TEST(StaticBudget, ConstantRegardlessOfIntensity) {
  StaticBudgetPolicy p(kilowatts(30.0));
  const auto c = cluster();
  EXPECT_DOUBLE_EQ(p.system_budget(seconds(0.0), 50.0, c).kilowatts(), 30.0);
  EXPECT_DOUBLE_EQ(p.system_budget(days(3.0), 900.0, c).kilowatts(), 30.0);
  EXPECT_EQ(p.name(), "static");
}

TEST(StaticBudget, RejectsNonPositive) {
  EXPECT_THROW(StaticBudgetPolicy(watts(0.0)), greenhpc::InvalidArgument);
}

TEST(IntensityProportional, FullBudgetWhenClean) {
  IntensityProportionalPolicy p({.ci_clean = 100.0, .ci_dirty = 400.0,
                                 .min_fraction = 0.6, .max_fraction = 1.0});
  const auto c = cluster();
  EXPECT_DOUBLE_EQ(p.system_budget(seconds(0.0), 50.0, c).kilowatts(), 50.0);
  EXPECT_DOUBLE_EQ(p.system_budget(seconds(0.0), 100.0, c).kilowatts(), 50.0);
}

TEST(IntensityProportional, FloorWhenDirty) {
  IntensityProportionalPolicy p({.ci_clean = 100.0, .ci_dirty = 400.0,
                                 .min_fraction = 0.6, .max_fraction = 1.0});
  const auto c = cluster();
  EXPECT_DOUBLE_EQ(p.system_budget(seconds(0.0), 400.0, c).kilowatts(), 30.0);
  EXPECT_DOUBLE_EQ(p.system_budget(seconds(0.0), 1000.0, c).kilowatts(), 30.0);
}

TEST(IntensityProportional, LinearInBetween) {
  IntensityProportionalPolicy p({.ci_clean = 100.0, .ci_dirty = 400.0,
                                 .min_fraction = 0.6, .max_fraction = 1.0});
  const auto c = cluster();
  // Midpoint (250) -> fraction 0.8 -> 40 kW.
  EXPECT_NEAR(p.system_budget(seconds(0.0), 250.0, c).kilowatts(), 40.0, 1e-9);
}

TEST(IntensityProportional, ConfigValidation) {
  EXPECT_THROW(IntensityProportionalPolicy({.ci_clean = 400.0, .ci_dirty = 100.0}),
               greenhpc::InvalidArgument);
  EXPECT_THROW(IntensityProportionalPolicy(
                   {.ci_clean = 100.0, .ci_dirty = 400.0, .min_fraction = 0.0}),
               greenhpc::InvalidArgument);
  EXPECT_THROW(IntensityProportionalPolicy({.ci_clean = 100.0,
                                            .ci_dirty = 400.0,
                                            .min_fraction = 0.9,
                                            .max_fraction = 0.8}),
               greenhpc::InvalidArgument);
}

TEST(CarbonRateCap, BudgetTracksTargetRate) {
  // Target 10 kg/h at 200 g/kWh -> 50 kW allowed == max power.
  CarbonRateCapPolicy p({.target_kg_per_hour = 10.0, .min_fraction = 0.2});
  const auto c = cluster();
  EXPECT_NEAR(p.system_budget(seconds(0.0), 200.0, c).kilowatts(), 50.0, 1e-9);
  // At 400 g/kWh only 25 kW keeps the rate.
  EXPECT_NEAR(p.system_budget(seconds(0.0), 400.0, c).kilowatts(), 25.0, 1e-9);
}

TEST(CarbonRateCap, RespectsFloorAndCeiling) {
  CarbonRateCapPolicy p({.target_kg_per_hour = 10.0, .min_fraction = 0.5});
  const auto c = cluster();
  // Extremely dirty: floor at 25 kW.
  EXPECT_DOUBLE_EQ(p.system_budget(seconds(0.0), 10000.0, c).kilowatts(), 25.0);
  // Extremely clean: capped at max power.
  EXPECT_DOUBLE_EQ(p.system_budget(seconds(0.0), 1.0, c).kilowatts(), 50.0);
}

TEST(CarbonRateCap, ConfigValidation) {
  EXPECT_THROW(CarbonRateCapPolicy({.target_kg_per_hour = 0.0}),
               greenhpc::InvalidArgument);
  EXPECT_THROW(CarbonRateCapPolicy({.target_kg_per_hour = 5.0, .min_fraction = 0.0}),
               greenhpc::InvalidArgument);
}

}  // namespace
}  // namespace greenhpc::powerstack
