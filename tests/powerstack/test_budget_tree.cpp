#include "powerstack/budget_tree.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace greenhpc::powerstack {
namespace {

BudgetNode leaf(const std::string& name, double min_w, double max_w, double weight = 1.0) {
  return BudgetNode{name, watts(min_w), watts(max_w), weight, {}};
}

TEST(BudgetTree, AggregateBounds) {
  BudgetNode root{"sys", {}, {}, 1.0, {leaf("a", 10, 100), leaf("b", 20, 50)}};
  EXPECT_DOUBLE_EQ(root.aggregate_min().watts(), 30.0);
  EXPECT_DOUBLE_EQ(root.aggregate_max().watts(), 150.0);
}

TEST(WaterFill, EqualWeightsSplitEvenly) {
  std::vector<BudgetNode> kids = {leaf("a", 0, 100), leaf("b", 0, 100)};
  const auto shares = water_fill(kids, watts(100.0));
  EXPECT_DOUBLE_EQ(shares[0].watts(), 50.0);
  EXPECT_DOUBLE_EQ(shares[1].watts(), 50.0);
}

TEST(WaterFill, WeightsSkewSurplus) {
  std::vector<BudgetNode> kids = {leaf("a", 0, 1000, 1.0), leaf("b", 0, 1000, 3.0)};
  const auto shares = water_fill(kids, watts(400.0));
  EXPECT_DOUBLE_EQ(shares[0].watts(), 100.0);
  EXPECT_DOUBLE_EQ(shares[1].watts(), 300.0);
}

TEST(WaterFill, FloorsAreGuaranteedFirst) {
  std::vector<BudgetNode> kids = {leaf("a", 80, 100), leaf("b", 10, 100)};
  const auto shares = water_fill(kids, watts(120.0));
  EXPECT_GE(shares[0].watts(), 80.0);
  EXPECT_GE(shares[1].watts(), 10.0);
  EXPECT_NEAR(shares[0].watts() + shares[1].watts(), 120.0, 1e-9);
}

TEST(WaterFill, SaturationRedistributes) {
  // a caps at 30; the surplus flows to b.
  std::vector<BudgetNode> kids = {leaf("a", 0, 30), leaf("b", 0, 500)};
  const auto shares = water_fill(kids, watts(200.0));
  EXPECT_DOUBLE_EQ(shares[0].watts(), 30.0);
  EXPECT_DOUBLE_EQ(shares[1].watts(), 170.0);
}

TEST(WaterFill, InfeasibleFloorScalesProportionally) {
  std::vector<BudgetNode> kids = {leaf("a", 60, 100), leaf("b", 40, 100)};
  const auto shares = water_fill(kids, watts(50.0));
  EXPECT_DOUBLE_EQ(shares[0].watts(), 30.0);
  EXPECT_DOUBLE_EQ(shares[1].watts(), 20.0);
}

TEST(WaterFill, NeverExceedsParentBudget) {
  std::vector<BudgetNode> kids = {leaf("a", 5, 40, 2.0), leaf("b", 15, 90, 1.0),
                                  leaf("c", 0, 10, 5.0)};
  for (double budget : {10.0, 30.0, 60.0, 100.0, 200.0}) {
    const auto shares = water_fill(kids, watts(budget));
    double total = 0.0;
    for (std::size_t i = 0; i < shares.size(); ++i) {
      total += shares[i].watts();
      EXPECT_LE(shares[i].watts(), kids[i].max_power.watts() + 1e-9);
    }
    EXPECT_LE(total, budget + 1e-6);
  }
}

TEST(Distribute, FullHierarchyConservesBudget) {
  const BudgetNode site = make_site_tree(3, 2, ComponentBounds{});
  const auto assignments = distribute(site, kilowatts(3.0));
  // Root gets the (possibly clamped) budget; children sum to parent at
  // every level.
  ASSERT_FALSE(assignments.empty());
  EXPECT_EQ(assignments[0].path, "system");
  double leaf_total = 0.0;
  for (const auto& a : assignments) {
    if (a.is_leaf) leaf_total += a.budget.watts();
  }
  EXPECT_NEAR(leaf_total, assignments[0].budget.watts(), 1e-6);
}

TEST(Distribute, ClampsToTreeEnvelope) {
  const BudgetNode site = make_site_tree(1, 1, ComponentBounds{});
  const Power envelope = site.aggregate_max();
  const auto assignments = distribute(site, envelope * 10.0);
  EXPECT_NEAR(assignments[0].budget.watts(), envelope.watts(), 1e-9);
}

TEST(Distribute, PathsAreHierarchical) {
  ComponentBounds bounds;
  bounds.gpus_per_node = 2;
  const BudgetNode site = make_site_tree(2, 2, bounds);
  const auto assignments = distribute(site, kilowatts(5.0));
  bool found_gpu_leaf = false;
  for (const auto& a : assignments) {
    if (a.path == "system/job1/node0/gpu1") {
      found_gpu_leaf = true;
      EXPECT_TRUE(a.is_leaf);
    }
  }
  EXPECT_TRUE(found_gpu_leaf);
}

TEST(Distribute, GpuWeightGetsLargerShare) {
  ComponentBounds bounds;
  bounds.gpus_per_node = 1;
  const BudgetNode site = make_site_tree(1, 1, bounds);
  // Generous but not saturating budget.
  const auto assignments = distribute(site, watts(500.0));
  double cpu = 0.0, gpu = 0.0;
  for (const auto& a : assignments) {
    if (a.path.ends_with("/cpu")) cpu = a.budget.watts();
    if (a.path.ends_with("/gpu0")) gpu = a.budget.watts();
  }
  EXPECT_GT(gpu, cpu);
}

TEST(WaterFill, Preconditions) {
  std::vector<BudgetNode> none;
  EXPECT_THROW((void)water_fill(none, watts(10.0)), greenhpc::InvalidArgument);
  std::vector<BudgetNode> bad_weight = {leaf("a", 0, 10, 0.0)};
  EXPECT_THROW((void)water_fill(bad_weight, watts(10.0)), greenhpc::InvalidArgument);
  std::vector<BudgetNode> inverted = {
      BudgetNode{"x", watts(10.0), watts(5.0), 1.0, {}}};
  EXPECT_THROW((void)water_fill(inverted, watts(10.0)), greenhpc::InvalidArgument);
}

}  // namespace
}  // namespace greenhpc::powerstack
