#include <gtest/gtest.h>

#include <memory>

#include "powerstack/policies.hpp"
#include "util/error.hpp"

namespace greenhpc::powerstack {
namespace {

hpcsim::ClusterConfig cluster() {
  hpcsim::ClusterConfig c;
  c.nodes = 100;
  c.node_tdp = watts(500.0);  // 50 kW max
  return c;
}

/// Inner policy that jumps between two levels on demand.
class StepPolicy final : public hpcsim::PowerBudgetPolicy {
 public:
  Power level = kilowatts(50.0);
  Power system_budget(Duration, double, const hpcsim::ClusterConfig&) override {
    return level;
  }
  std::string name() const override { return "step"; }
};

TEST(RampLimited, FirstCallPassesThrough) {
  auto step = std::make_unique<StepPolicy>();
  RampLimitedPolicy ramp(std::move(step), kilowatts(1.0));
  EXPECT_DOUBLE_EQ(ramp.system_budget(seconds(0.0), 100.0, cluster()).kilowatts(), 50.0);
}

TEST(RampLimited, ClampsDownwardSwing) {
  auto step_owner = std::make_unique<StepPolicy>();
  StepPolicy* step = step_owner.get();
  RampLimitedPolicy ramp(std::move(step_owner), kilowatts(0.01));  // 10 W/s
  (void)ramp.system_budget(seconds(0.0), 100.0, cluster());        // primes at 50 kW
  step->level = kilowatts(25.0);
  // After 60 s, at 10 W/s the budget may move at most 600 W.
  const Power b = ramp.system_budget(seconds(60.0), 100.0, cluster());
  EXPECT_NEAR(b.kilowatts(), 49.4, 1e-9);
}

TEST(RampLimited, ClampsUpwardSwing) {
  auto step_owner = std::make_unique<StepPolicy>();
  StepPolicy* step = step_owner.get();
  step->level = kilowatts(20.0);
  RampLimitedPolicy ramp(std::move(step_owner), kilowatts(0.05));  // 50 W/s
  (void)ramp.system_budget(seconds(0.0), 100.0, cluster());
  step->level = kilowatts(50.0);
  const Power b = ramp.system_budget(seconds(120.0), 100.0, cluster());
  EXPECT_NEAR(b.kilowatts(), 26.0, 1e-9);  // 20 + 50*120/1000
}

TEST(RampLimited, ConvergesToTargetOverTime) {
  auto step_owner = std::make_unique<StepPolicy>();
  StepPolicy* step = step_owner.get();
  RampLimitedPolicy ramp(std::move(step_owner), kilowatts(0.1));
  (void)ramp.system_budget(seconds(0.0), 100.0, cluster());  // 50 kW
  step->level = kilowatts(30.0);
  Power b;
  for (int t = 1; t <= 10; ++t) {
    b = ramp.system_budget(seconds(60.0 * t), 100.0, cluster());
  }
  EXPECT_NEAR(b.kilowatts(), 30.0, 1e-9);  // reached after ~200 s
}

TEST(RampLimited, SmallSwingsUnclamped) {
  auto step_owner = std::make_unique<StepPolicy>();
  StepPolicy* step = step_owner.get();
  RampLimitedPolicy ramp(std::move(step_owner), kilowatts(1.0));
  (void)ramp.system_budget(seconds(0.0), 100.0, cluster());
  step->level = kilowatts(49.0);
  const Power b = ramp.system_budget(seconds(60.0), 100.0, cluster());
  EXPECT_DOUBLE_EQ(b.kilowatts(), 49.0);
}

TEST(RampLimited, NameAndPreconditions) {
  RampLimitedPolicy ramp(std::make_unique<StepPolicy>(), kilowatts(1.0));
  EXPECT_EQ(ramp.name(), "step+ramp");
  EXPECT_THROW(RampLimitedPolicy(nullptr, kilowatts(1.0)), greenhpc::InvalidArgument);
  EXPECT_THROW(RampLimitedPolicy(std::make_unique<StepPolicy>(), watts(0.0)),
               greenhpc::InvalidArgument);
}

}  // namespace
}  // namespace greenhpc::powerstack
