// End-to-end experiments exercising the full stack exactly the way the
// benches do: realistic grid traces, generated workloads, composed
// policies. These tests pin down the *directional* results the paper
// predicts (carbon-aware < baseline on carbon, bounded wait inflation),
// which is the reproduction's core claim.

#include <gtest/gtest.h>

#include <memory>

#include "accounting/incentives.hpp"
#include "accounting/job_carbon.hpp"
#include "carbon/forecast.hpp"
#include "core/scenario.hpp"
#include "powerstack/policies.hpp"
#include "sched/carbon_aware.hpp"
#include "sched/decorators.hpp"
#include "sched/easy_backfill.hpp"
#include "sched/fcfs.hpp"

namespace greenhpc {
namespace {

core::ScenarioConfig scenario(double utilization_knob = 1.0,
                              double malleable = 0.0, double checkpointable = 0.0) {
  core::ScenarioConfig cfg;
  cfg.cluster.nodes = 64;
  cfg.cluster.tick = minutes(2.0);
  cfg.region = carbon::Region::Germany;
  cfg.trace_span = days(8.0);
  cfg.workload.job_count = static_cast<int>(220 * utilization_knob);
  cfg.workload.span = days(5.0);
  cfg.workload.max_job_nodes = 32;
  cfg.workload.malleable_fraction = malleable;
  cfg.workload.checkpointable_fraction = checkpointable;
  cfg.seed = 2024;
  return cfg;
}

core::SchedulerFactory easy_factory() {
  return [] { return std::make_unique<sched::EasyBackfillScheduler>(); };
}

core::SchedulerFactory carbon_easy_factory() {
  return [] {
    sched::CarbonAwareEasyScheduler::Config cfg;
    cfg.max_hold = hours(10.0);
    return std::make_unique<sched::CarbonAwareEasyScheduler>(
        cfg, std::make_shared<carbon::PersistenceForecaster>());
  };
}

TEST(EndToEnd, CarbonAwareSchedulingCutsJobCarbon) {
  // EXP-SCHED direction: on identical inputs, carbon-aware EASY emits
  // less carbon per delivered node-hour than plain EASY, at a bounded
  // wait-time cost.
  core::ScenarioRunner runner(scenario(0.7));
  const auto easy = runner.run("easy", easy_factory());
  const auto green = runner.run("carbon-easy", carbon_easy_factory());
  ASSERT_EQ(easy.completed, static_cast<int>(runner.jobs().size()));
  ASSERT_EQ(green.completed, easy.completed);
  EXPECT_LT(green.carbon_per_node_hour_g, easy.carbon_per_node_hour_g);
  // Per-job attributed carbon drops in aggregate.
  Carbon easy_job_carbon{}, green_job_carbon{};
  for (const auto& j : easy.result.jobs) easy_job_carbon += j.carbon;
  for (const auto& j : green.result.jobs) green_job_carbon += j.carbon;
  EXPECT_LT(green_job_carbon.grams(), easy_job_carbon.grams());
  EXPECT_GE(green.green_energy_share, easy.green_energy_share * 0.98);
  // Bounded cost: mean wait grows by less than the configured max hold.
  EXPECT_LT(green.mean_wait_h - easy.mean_wait_h, 10.0);
}

TEST(EndToEnd, DynamicPowerBudgetCutsCarbonVsStatic) {
  // EXP-PWR direction: CI-proportional system power budgets reduce total
  // carbon versus an always-full budget, without dropping completions.
  core::ScenarioRunner runner(scenario(0.6));
  const auto unconstrained = runner.run("easy", easy_factory());
  const auto scaled = runner.run("easy", easy_factory(), [] {
    return std::make_unique<powerstack::IntensityProportionalPolicy>(
        powerstack::IntensityProportionalPolicy::Config{
            .ci_clean = 250.0, .ci_dirty = 550.0, .min_fraction = 0.55,
            .max_fraction = 1.0});
  });
  ASSERT_EQ(scaled.completed, unconstrained.completed);
  EXPECT_LT(scaled.carbon_per_node_hour_g, unconstrained.carbon_per_node_hour_g);
}

TEST(EndToEnd, CheckpointingHelpsOnCheckpointableWorkloads) {
  core::ScenarioRunner runner(scenario(0.6, 0.0, 0.8));
  const auto base = runner.run("easy", easy_factory());
  const auto ckpt = runner.run("easy+ckpt", [] {
    return std::make_unique<sched::CheckpointDecorator>(
        sched::CheckpointDecorator::Config{},
        std::make_unique<sched::EasyBackfillScheduler>());
  });
  ASSERT_GT(ckpt.completed, 0);
  EXPECT_EQ(ckpt.completed, base.completed);
  // Suspending in dirty periods should not increase carbon per node-hour.
  EXPECT_LE(ckpt.carbon_per_node_hour_g, base.carbon_per_node_hour_g * 1.02);
}

TEST(EndToEnd, MalleabilityAbsorbsBudgetSwings) {
  // EXP-MALL direction: with a tight dynamic budget, a malleable workload
  // plus the malleability controller completes more work than rigid jobs
  // under the same budget.
  auto power_factory = [] {
    return std::make_unique<powerstack::IntensityProportionalPolicy>(
        powerstack::IntensityProportionalPolicy::Config{
            .ci_clean = 250.0, .ci_dirty = 500.0, .min_fraction = 0.45,
            .max_fraction = 0.9});
  };
  core::ScenarioRunner rigid_runner(scenario(0.6, 0.0));
  const auto rigid = rigid_runner.run("easy", easy_factory(), power_factory);
  core::ScenarioRunner mall_runner(scenario(0.6, 0.6));
  const auto mall = mall_runner.run("easy+malleable", [] {
    return std::make_unique<sched::MalleableDecorator>(
        sched::MalleableDecorator::Config{},
        std::make_unique<sched::EasyBackfillScheduler>());
  }, power_factory);
  // Malleable workload under the same budget shouldn't violate it more
  // often and should sustain throughput.
  EXPECT_LE(mall.result.budget_violations, rigid.result.budget_violations);
  EXPECT_GT(mall.completed, 0);
}

TEST(EndToEnd, AccountingPipelineOverSimulation) {
  // EXP-USER pipeline: simulate -> profile -> aggregate -> incentivize.
  auto cfg = scenario(0.5);
  cfg.workload.over_allocation_mean = 1.4;
  core::ScenarioRunner runner(cfg);
  const auto outcome = runner.run("easy", easy_factory());
  const auto profiles =
      accounting::profile_jobs(outcome.result, runner.config().cluster);
  ASSERT_GT(profiles.size(), 50u);
  double waste = 0.0;
  for (const auto& p : profiles) waste += p.over_allocation_waste;
  EXPECT_GT(waste / static_cast<double>(profiles.size()), 0.02);

  const auto users = accounting::aggregate_by_user(profiles);
  EXPECT_GT(users.size(), 5u);

  accounting::IncentiveConfig inc;
  inc.pricing.green_discount = 0.3;
  const auto inc_outcome =
      accounting::evaluate_incentive(outcome.result.jobs, runner.trace(), inc, 5);
  EXPECT_GT(inc_outcome.carbon_reduction(), 0.0);
}

TEST(EndToEnd, FcfsIsDominatedByEasy) {
  core::ScenarioRunner runner(scenario(0.8));
  const auto fcfs = runner.run("fcfs", [] {
    return std::make_unique<sched::FcfsScheduler>();
  });
  const auto easy = runner.run("easy", easy_factory());
  EXPECT_GE(easy.completed, fcfs.completed);
  EXPECT_LE(easy.mean_wait_h, fcfs.mean_wait_h * 1.05);
}

}  // namespace
}  // namespace greenhpc
