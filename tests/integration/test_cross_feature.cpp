// Cross-feature integration: the newer subsystems composed the way a
// production deployment would use them — real-format (SWF) traces through
// the simulator with ledger accounting, facility overheads applied to
// simulator output, and a federation fed from one SWF stream.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "accounting/ledger.hpp"
#include "core/federation.hpp"
#include "facility/facility_model.hpp"
#include "hpcsim/simulator.hpp"
#include "hpcsim/swf_io.hpp"
#include "hpcsim/workload.hpp"
#include "sched/easy_backfill.hpp"
#include "testing/helpers.hpp"

namespace greenhpc {
namespace {

std::vector<hpcsim::JobSpec> swf_round_trip_workload(int count, std::uint64_t seed) {
  hpcsim::WorkloadConfig wl;
  wl.job_count = count;
  wl.span = days(2.0);
  wl.max_job_nodes = 16;
  const auto jobs = hpcsim::WorkloadGenerator(wl, seed).generate();
  std::stringstream buffer;
  hpcsim::save_swf(jobs, buffer);
  return hpcsim::load_swf(buffer).jobs;
}

TEST(CrossFeature, SwfWorkloadThroughSimulatorAndLedger) {
  const auto jobs = swf_round_trip_workload(80, 3);
  carbon::GridModel grid(carbon::Region::Germany, 3);
  const auto trace = grid.generate(seconds(0.0), days(5.0), minutes(30.0));

  hpcsim::Simulator::Config cfg;
  cfg.cluster = greenhpc::testing::small_cluster(32);
  cfg.cluster.enforce_walltime = true;  // production semantics
  cfg.carbon_intensity = trace;
  hpcsim::Simulator sim(cfg, jobs);
  sched::EasyBackfillScheduler sched(true);  // moldable shrink enabled
  const auto result = sim.run(sched);
  // SWF round-trips are rigid with walltime >= runtime at full speed, so
  // everything completes even with enforcement on.
  EXPECT_EQ(result.completed_jobs + result.walltime_kills,
            static_cast<int>(jobs.size()));
  EXPECT_GT(result.completed_jobs, static_cast<int>(jobs.size()) * 9 / 10);

  accounting::ProjectLedger ledger(trace, accounting::PricingPolicy{});
  for (const auto& j : result.jobs) {
    if (!j.completed) continue;
    // Grant lazily on first sight of the project.
    try {
      (void)ledger.account(j.spec.project);
    } catch (const InvalidArgument&) {
      ledger.grant(j.spec.project, 1e6);
    }
    EXPECT_TRUE(ledger.charge(j));
  }
  double billed = 0.0;
  for (const auto& account : ledger.accounts()) billed += account.node_hours_billed;
  EXPECT_GT(billed, 0.0);
}

TEST(CrossFeature, FacilityOverheadOnSimulatorPower) {
  // Run a cluster, then put its *actual* power series through the
  // facility model — PUE applies to the simulated draw, not a constant.
  core::ScenarioConfig cfg;
  cfg.cluster.nodes = 64;
  cfg.region = carbon::Region::Germany;
  cfg.trace_span = days(6.0);
  cfg.workload.job_count = 150;
  cfg.workload.span = days(3.0);
  cfg.workload.max_job_nodes = 32;
  cfg.seed = 9;
  core::ScenarioRunner runner(cfg);
  const auto outcome = runner.run(
      "easy", [] { return std::make_unique<sched::EasyBackfillScheduler>(); });

  facility::WeatherModel weather(carbon::Region::Germany, 9);
  const auto temp = weather.generate(seconds(0.0), days(6.0), hours(1.0));
  const auto fac = facility::evaluate_facility(
      outcome.result.system_power, temp, runner.trace(),
      facility::CoolingModel(facility::CoolingTechnology::WarmWater),
      facility::HeatReuseConfig{});
  EXPECT_NEAR(fac.it_energy.joules(), outcome.result.total_energy.joules(),
              0.01 * outcome.result.total_energy.joules());
  EXPECT_GT(fac.facility_energy.joules(), fac.it_energy.joules());
  EXPECT_LT(fac.net_carbon().grams(), fac.gross_carbon.grams());
}

TEST(CrossFeature, FederationConsumesSwfStream) {
  const auto jobs = swf_round_trip_workload(60, 11);
  core::Federation::Config cfg;
  for (auto [name, region] : {std::pair{"a", carbon::Region::France},
                              std::pair{"b", carbon::Region::Poland}}) {
    core::SiteSpec site;
    site.name = name;
    site.cluster = greenhpc::testing::small_cluster(24);
    site.region = region;
    cfg.sites.push_back(site);
  }
  cfg.trace_span = days(5.0);
  core::Federation fed(cfg);
  const auto rr = fed.run(jobs, core::DispatchPolicy::RoundRobin, [] {
    return std::make_unique<sched::EasyBackfillScheduler>();
  });
  const auto green = fed.run(jobs, core::DispatchPolicy::GreenestNow, [] {
    return std::make_unique<sched::EasyBackfillScheduler>();
  });
  EXPECT_EQ(rr.completed, static_cast<int>(jobs.size()));
  EXPECT_EQ(green.completed, rr.completed);
  EXPECT_LT(green.job_carbon.grams(), rr.job_carbon.grams());
}

}  // namespace
}  // namespace greenhpc
