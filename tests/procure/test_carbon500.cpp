#include "procure/carbon500.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace greenhpc::procure {
namespace {

TEST(Carbon500, RankSortsDescendingByScore) {
  embodied::ActModel model;
  const auto ranked = rank(reference_list(model));
  ASSERT_GE(ranked.size(), 5u);
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].score_gflops_per_gram, ranked[i].score_gflops_per_gram);
  }
}

TEST(Carbon500, LocationChangesRank) {
  // Identical Juwels Booster hardware: Norway placement must outrank the
  // Poland placement (Fig. 2's location lever applied to the ranking).
  embodied::ActModel model;
  const auto ranked = rank(reference_list(model));
  std::size_t pl = 0, no = 0;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i].system == "Juwels Booster (if in PL)") pl = i;
    if (ranked[i].system == "Juwels Booster (if in NO)") no = i;
  }
  EXPECT_LT(no, pl);
}

TEST(Carbon500, RankingDivergesFromTop500) {
  // Carbon ranking must not simply follow Rmax: find at least one pair
  // ordered differently by score than by performance.
  embodied::ActModel model;
  const auto ranked = rank(reference_list(model));
  bool diverges = false;
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    if (ranked[i].rmax_pflops > ranked[i - 1].rmax_pflops) diverges = true;
  }
  EXPECT_TRUE(diverges);
}

TEST(Carbon500, MakeEntryUsesInventoryFigures) {
  embodied::ActModel model;
  const auto sys = embodied::supermuc_ng();
  const auto e = make_entry(model, sys, carbon::Region::Germany);
  EXPECT_EQ(e.system, "SuperMUC-NG");
  EXPECT_DOUBLE_EQ(e.rmax_pflops, sys.peak_pflops);
  EXPECT_GT(e.embodied.tonnes(), 1000.0);
  EXPECT_EQ(e.lifetime_years, sys.lifetime_years);
}

TEST(Carbon500, OperationalComputedOverLifetime) {
  embodied::ActModel model;
  auto list = reference_list(model);
  const auto ranked = rank(std::move(list));
  for (const auto& e : ranked) {
    EXPECT_GT(e.lifetime_operational.grams(), 0.0) << e.system;
    EXPECT_GT(e.score_gflops_per_gram, 0.0) << e.system;
  }
}

TEST(Carbon500, InvalidEntryThrows) {
  Carbon500Entry bad;
  bad.system = "broken";
  bad.rmax_pflops = 0.0;
  EXPECT_THROW((void)rank({bad}), greenhpc::InvalidArgument);
}

}  // namespace
}  // namespace greenhpc::procure
