#include "procure/tradeoff.hpp"

#include <gtest/gtest.h>

#include "procure/catalog.hpp"
#include "util/error.hpp"

namespace greenhpc::procure {
namespace {

TradeoffConfig base_config() {
  // Cost/power/node envelopes are deliberately loose so the *carbon*
  // budget is the binding constraint across most of the sweep — the
  // regime the paper's section-2.2 trade-off describes.
  TradeoffConfig cfg;
  cfg.total_budget = tonnes_co2(30000.0);
  cfg.lifetime = days(365.0 * 6.0);
  cfg.grid = grams_per_kwh(300.0);
  cfg.base.cost_budget_keur = 2.0e6;
  cfg.base.power_limit = megawatts(50.0);
  cfg.base.max_nodes = 30000;
  cfg.power_elasticity = 0.7;
  return cfg;
}

TEST(Tradeoff, EvaluateSplitBasics) {
  embodied::ActModel model;
  ProcurementOptimizer opt(default_catalog(model));
  const auto point = evaluate_split(opt, base_config(), 0.4);
  EXPECT_DOUBLE_EQ(point.embodied_fraction, 0.4);
  EXPECT_GT(point.procured_pflops, 0.0);
  EXPECT_GT(point.sustainable_power.watts(), 0.0);
  EXPECT_GT(point.delivered_pflops, 0.0);
  EXPECT_LE(point.delivered_pflops, point.procured_pflops + 1e-9);
  // Plan must respect the embodied share of the budget.
  EXPECT_LE(point.plan.embodied(opt.catalog()).tonnes(), 30000.0 * 0.4 + 1e-6);
}

TEST(Tradeoff, MoreEmbodiedBudgetBuysMoreHardware) {
  embodied::ActModel model;
  ProcurementOptimizer opt(default_catalog(model));
  const auto small = evaluate_split(opt, base_config(), 0.1);
  const auto large = evaluate_split(opt, base_config(), 0.7);
  EXPECT_GE(large.procured_pflops, small.procured_pflops);
  // But less operational budget to run it.
  EXPECT_LT(large.sustainable_power.watts(), small.sustainable_power.watts());
}

TEST(Tradeoff, SweepHasInteriorOptimum) {
  // The paper's claim: trading embodied against operational budget is a
  // real optimization — the best split is neither extreme.
  embodied::ActModel model;
  ProcurementOptimizer opt(default_catalog(model));
  const auto sweep = sweep_budget_split(opt, base_config(), 19);
  ASSERT_EQ(sweep.size(), 19u);
  const auto& best = best_split(sweep);
  EXPECT_GT(best.embodied_fraction, sweep.front().embodied_fraction);
  EXPECT_LT(best.embodied_fraction, sweep.back().embodied_fraction);
  EXPECT_GT(best.delivered_pflops, sweep.front().delivered_pflops);
  EXPECT_GT(best.delivered_pflops, sweep.back().delivered_pflops);
}

TEST(Tradeoff, CleanerGridShiftsOptimumTowardEmbodied) {
  // In a clean grid, operation is carbon-cheap, so more of the budget
  // should go into hardware.
  embodied::ActModel model;
  ProcurementOptimizer opt(default_catalog(model));
  TradeoffConfig clean = base_config();
  clean.grid = grams_per_kwh(20.0);  // LRZ-class hydro contract
  TradeoffConfig dirty = base_config();
  dirty.grid = grams_per_kwh(700.0);
  const auto best_clean = best_split(sweep_budget_split(opt, clean, 19));
  const auto best_dirty = best_split(sweep_budget_split(opt, dirty, 19));
  EXPECT_GT(best_clean.embodied_fraction, best_dirty.embodied_fraction);
}

TEST(Tradeoff, Preconditions) {
  embodied::ActModel model;
  ProcurementOptimizer opt(default_catalog(model));
  EXPECT_THROW((void)evaluate_split(opt, base_config(), 0.0), greenhpc::InvalidArgument);
  EXPECT_THROW((void)evaluate_split(opt, base_config(), 1.0), greenhpc::InvalidArgument);
  EXPECT_THROW((void)sweep_budget_split(opt, base_config(), 2), greenhpc::InvalidArgument);
  EXPECT_THROW((void)best_split({}), greenhpc::InvalidArgument);
}

}  // namespace
}  // namespace greenhpc::procure
