#include "procure/optimizer.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace greenhpc::procure {
namespace {

std::vector<NodeBlueprint> toy_catalog() {
  return {
      {"cpu", 3.0, watts(900.0), kilograms_co2(600.0), 15.0},
      {"gpu", 40.0, watts(2900.0), kilograms_co2(1800.0), 160.0},
      {"lp", 3.4, watts(200.0), kilograms_co2(250.0), 11.0},
  };
}

TEST(Plan, Aggregations) {
  const auto cat = toy_catalog();
  ProcurementPlan plan;
  plan.counts = {2, 1, 3};
  EXPECT_DOUBLE_EQ(plan.perf_tflops(cat), 6.0 + 40.0 + 10.2);
  EXPECT_DOUBLE_EQ(plan.cost_keur(cat), 30.0 + 160.0 + 33.0);
  EXPECT_DOUBLE_EQ(plan.power(cat).watts(), 1800.0 + 2900.0 + 600.0);
  EXPECT_DOUBLE_EQ(plan.embodied(cat).kilograms(), 1200.0 + 1800.0 + 750.0);
  EXPECT_EQ(plan.total_nodes(), 6);
}

TEST(Plan, FeasibilityChecks) {
  const auto cat = toy_catalog();
  ProcurementPlan plan;
  plan.counts = {1, 0, 0};
  ProcurementConstraints c;
  c.cost_budget_keur = 20.0;
  EXPECT_TRUE(plan.feasible(cat, c));
  c.cost_budget_keur = 10.0;
  EXPECT_FALSE(plan.feasible(cat, c));
  c.cost_budget_keur = 20.0;
  c.power_limit = watts(800.0);
  EXPECT_FALSE(plan.feasible(cat, c));
  c.power_limit = kilowatts(10.0);
  c.embodied_budget = kilograms_co2(100.0);
  EXPECT_FALSE(plan.feasible(cat, c));
  c.embodied_budget = tonnes_co2(100.0);
  c.max_nodes = 0;
  EXPECT_FALSE(plan.feasible(cat, c));
}

TEST(Optimizer, MatchesExhaustiveOnSmallInstances) {
  ProcurementOptimizer opt(toy_catalog());
  ProcurementConstraints c;
  c.cost_budget_keur = 400.0;
  c.power_limit = kilowatts(8.0);
  c.embodied_budget = tonnes_co2(6.0);
  c.max_nodes = 10;
  const auto heuristic = opt.optimize(c);
  const auto exact = opt.optimize_exhaustive(c, 10);
  EXPECT_TRUE(heuristic.feasible(opt.catalog(), c));
  // The heuristic must reach at least 95% of the optimum on this instance.
  EXPECT_GE(heuristic.perf_tflops(opt.catalog()),
            0.95 * exact.perf_tflops(opt.catalog()));
}

TEST(Optimizer, SweepAgainstExhaustive) {
  // Property sweep over several budget envelopes.
  ProcurementOptimizer opt(toy_catalog());
  for (double cost : {150.0, 300.0, 600.0}) {
    for (double power_kw : {3.0, 6.0}) {
      ProcurementConstraints c;
      c.cost_budget_keur = cost;
      c.power_limit = kilowatts(power_kw);
      c.embodied_budget = tonnes_co2(5.0);
      c.max_nodes = 12;
      const auto heuristic = opt.optimize(c);
      const auto exact = opt.optimize_exhaustive(c, 12);
      EXPECT_TRUE(heuristic.feasible(opt.catalog(), c));
      EXPECT_GE(heuristic.perf_tflops(opt.catalog()),
                0.90 * exact.perf_tflops(opt.catalog()))
          << "cost=" << cost << " power=" << power_kw;
    }
  }
}

TEST(Optimizer, CarbonBudgetBindsChoice) {
  // With a loose carbon budget GPUs dominate on perf density; a tight
  // embodied budget pushes toward low-carbon nodes.
  ProcurementOptimizer opt(toy_catalog());
  ProcurementConstraints loose;
  loose.cost_budget_keur = 2000.0;
  loose.power_limit = kilowatts(40.0);
  loose.embodied_budget = tonnes_co2(25.0);
  loose.max_nodes = 100;
  ProcurementConstraints tight = loose;
  tight.embodied_budget = tonnes_co2(2.0);
  const auto plan_loose = opt.optimize(loose);
  const auto plan_tight = opt.optimize(tight);
  EXPECT_GT(plan_loose.perf_tflops(opt.catalog()),
            plan_tight.perf_tflops(opt.catalog()));
  EXPECT_LE(plan_tight.embodied(opt.catalog()).tonnes(), 2.0 + 1e-9);
}

TEST(Optimizer, UnconstrainedDefaultsDontOverflow) {
  ProcurementOptimizer opt(toy_catalog());
  ProcurementConstraints c;  // everything effectively unlimited...
  c.max_nodes = 50;          // ...except node count
  const auto plan = opt.optimize(c);
  EXPECT_EQ(plan.total_nodes(), 50);
}

TEST(Optimizer, Preconditions) {
  EXPECT_THROW(ProcurementOptimizer{{}}, greenhpc::InvalidArgument);
  std::vector<NodeBlueprint> bad = {{"x", 0.0, watts(1.0), grams_co2(1.0), 1.0}};
  EXPECT_THROW(ProcurementOptimizer{bad}, greenhpc::InvalidArgument);
  ProcurementOptimizer opt(toy_catalog());
  ProcurementConstraints c;
  EXPECT_THROW((void)opt.optimize_exhaustive(c, 10000), greenhpc::InvalidArgument);
}

}  // namespace
}  // namespace greenhpc::procure
