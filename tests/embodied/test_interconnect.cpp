#include "embodied/interconnect.hpp"

#include <gtest/gtest.h>

#include "embodied/systems.hpp"
#include "util/error.hpp"

namespace greenhpc::embodied {
namespace {

TEST(Interconnect, ScalesWithNodeCount) {
  const auto spec = hdr_infiniband();
  const Carbon c1k = interconnect_embodied(spec, 1000);
  const Carbon c2k = interconnect_embodied(spec, 2000);
  EXPECT_GT(c2k.grams(), 1.9 * c1k.grams());
  EXPECT_LT(c2k.grams(), 2.1 * c1k.grams());
  EXPECT_DOUBLE_EQ(interconnect_embodied(spec, 0).grams(), 0.0);
}

TEST(Interconnect, CompositionMatchesHandCalc) {
  InterconnectSpec s;
  s.nics_per_node = 1;
  s.nic_kg = 10.0;
  s.cable_kg = 2.0;
  s.switch_ports = 40;
  s.switch_kg = 100.0;
  s.topology_factor = 2.0;
  // 400 nodes: NICs 4000 kg; switch ports 800 -> 20 switches -> 2000 kg;
  // cables 800/2 * 2 = 800 kg.
  EXPECT_NEAR(interconnect_embodied(s, 400).kilograms(), 4000.0 + 2000.0 + 800.0, 1e-9);
}

TEST(Interconnect, RicherTopologyCostsMore) {
  InterconnectSpec lean = hdr_infiniband();
  lean.topology_factor = 1.5;  // heavily oversubscribed
  InterconnectSpec fat = hdr_infiniband();
  fat.topology_factor = 3.0;  // full-bisection three-tier
  EXPECT_GT(interconnect_embodied(fat, 5000).grams(),
            interconnect_embodied(lean, 5000).grams());
}

TEST(Interconnect, Fig1AblationShiftsSharesModestly) {
  // The paper omitted interconnects from Fig. 1. Including an HDR-class
  // fabric should add single-digit percent to a CPU system's total —
  // enough to matter, not enough to overturn Fig. 1's conclusions.
  const ActModel model;
  const auto sys = supermuc_ng();
  const Carbon base = embodied_breakdown(model, sys).total();
  const Carbon fabric = interconnect_embodied(hdr_infiniband(), sys.node_count);
  const double share = fabric / (base + fabric);
  EXPECT_GT(share, 0.02);
  EXPECT_LT(share, 0.15);
}

TEST(Interconnect, Preconditions) {
  EXPECT_THROW((void)interconnect_embodied(hdr_infiniband(), -1),
               greenhpc::InvalidArgument);
  InterconnectSpec bad = hdr_infiniband();
  bad.topology_factor = 0.5;
  EXPECT_THROW((void)interconnect_embodied(bad, 10), greenhpc::InvalidArgument);
  bad = hdr_infiniband();
  bad.switch_ports = 0;
  EXPECT_THROW((void)interconnect_embodied(bad, 10), greenhpc::InvalidArgument);
}

}  // namespace
}  // namespace greenhpc::embodied
