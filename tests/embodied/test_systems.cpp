#include "embodied/systems.hpp"

#include <gtest/gtest.h>

namespace greenhpc::embodied {
namespace {

TEST(Systems, InventoriesMatchPaperCapacities) {
  // Capacities quoted verbatim in the paper's section 2.
  const auto juwels = juwels_booster();
  EXPECT_EQ(juwels.gpu_count, 3744);
  EXPECT_EQ(juwels.cpu_count, 1872);
  EXPECT_DOUBLE_EQ(juwels.dram_gb, 0.47e6);
  EXPECT_DOUBLE_EQ(juwels.storage_gb, 37.6e6);

  const auto ng = supermuc_ng();
  EXPECT_EQ(ng.cpu_count, 12960);
  EXPECT_FALSE(ng.gpu.has_value());
  EXPECT_DOUBLE_EQ(ng.dram_gb, 0.72e6);
  EXPECT_DOUBLE_EQ(ng.storage_gb, 70.26e6);

  const auto hk = hawk();
  EXPECT_EQ(hk.cpu_count, 11264);
  EXPECT_FALSE(hk.gpu.has_value());
  EXPECT_DOUBLE_EQ(hk.dram_gb, 1.4e6);
  EXPECT_DOUBLE_EQ(hk.storage_gb, 42.0e6);
}

TEST(Systems, Fig1MemoryStorageShares) {
  // The paper's headline Fig. 1 numbers: "memory and storage account for
  // 43.5%, 59.6%, and 55.5% embodied carbon emissions for the three
  // systems, respectively." Calibration target: within 2 percentage points.
  ActModel m;
  const double juwels = embodied_breakdown(m, juwels_booster()).memory_storage_share();
  const double ng = embodied_breakdown(m, supermuc_ng()).memory_storage_share();
  const double hk = embodied_breakdown(m, hawk()).memory_storage_share();
  EXPECT_NEAR(juwels, 0.435, 0.02);
  EXPECT_NEAR(ng, 0.596, 0.02);
  EXPECT_NEAR(hk, 0.555, 0.02);
}

TEST(Systems, Fig1GpuClassDominatesInJuwels) {
  // "we observe that GPUs have a significantly higher carbon embodied
  // footprint than the others."
  ActModel m;
  const EmbodiedBreakdown b = embodied_breakdown(m, juwels_booster());
  EXPECT_GT(b.gpu, b.cpu);
  EXPECT_GT(b.gpu, b.dram);
  EXPECT_GT(b.gpu, b.storage);
}

TEST(Systems, TotalsAreInPlausibleRange) {
  // System-level embodied totals should land in the low thousands of
  // tonnes (Li et al.-class estimates for systems of this size).
  ActModel m;
  for (const auto& sys : fig1_systems()) {
    const Carbon total = embodied_breakdown(m, sys).total();
    EXPECT_GT(total.tonnes(), 1000.0) << sys.name;
    EXPECT_LT(total.tonnes(), 10000.0) << sys.name;
  }
}

TEST(Systems, BreakdownSharesSumToOne) {
  ActModel m;
  for (const auto& sys : fig1_systems()) {
    const EmbodiedBreakdown b = embodied_breakdown(m, sys);
    const double sum =
        b.share(b.cpu) + b.share(b.gpu) + b.share(b.dram) + b.share(b.storage);
    EXPECT_NEAR(sum, 1.0, 1e-12) << sys.name;
  }
}

TEST(Systems, CpuOnlySystemsHaveNoGpuCarbon) {
  ActModel m;
  EXPECT_DOUBLE_EQ(embodied_breakdown(m, supermuc_ng()).gpu.grams(), 0.0);
  EXPECT_DOUBLE_EQ(embodied_breakdown(m, hawk()).gpu.grams(), 0.0);
}

TEST(Systems, EmptyBreakdownShareIsZero) {
  EmbodiedBreakdown empty;
  EXPECT_DOUBLE_EQ(empty.memory_storage_share(), 0.0);
  EXPECT_DOUBLE_EQ(empty.share(empty.cpu), 0.0);
}

TEST(Systems, CleanerFabGridReducesEverySystem) {
  ActModel dirty(ActModel::Config{.fab_grid = grams_per_kwh(700.0)});
  ActModel clean(ActModel::Config{.fab_grid = grams_per_kwh(100.0)});
  for (const auto& sys : fig1_systems()) {
    EXPECT_GT(embodied_breakdown(dirty, sys).total().grams(),
              embodied_breakdown(clean, sys).total().grams())
        << sys.name;
  }
}

TEST(Systems, ExascaleIntroAnchors) {
  // The paper's introduction: "Frontier ... consumes 20MW of power in
  // continuous operation, while the upcoming Aurora ... is estimated to
  // draw 60MW."
  EXPECT_DOUBLE_EQ(frontier().avg_power.megawatts(), 20.0);
  EXPECT_DOUBLE_EQ(aurora_estimate().avg_power.megawatts(), 60.0);
}

TEST(Systems, ExascaleEmbodiedDwarfsPetascale) {
  ActModel m;
  const Carbon frontier_total = embodied_breakdown(m, frontier()).total();
  const Carbon ng_total = embodied_breakdown(m, supermuc_ng()).total();
  EXPECT_GT(frontier_total.tonnes(), 3.0 * ng_total.tonnes());
  EXPECT_LT(frontier_total.tonnes(), 60000.0);  // sanity ceiling
  const Carbon aurora_total = embodied_breakdown(m, aurora_estimate()).total();
  EXPECT_GT(aurora_total.tonnes(), frontier_total.tonnes() * 0.5);
}

TEST(Systems, ExascaleGpuClassDominates) {
  ActModel m;
  for (const auto& sys : {frontier(), aurora_estimate()}) {
    const EmbodiedBreakdown b = embodied_breakdown(m, sys);
    EXPECT_GT(b.gpu, b.cpu) << sys.name;
  }
}

TEST(Systems, Fig1OrderIsJuwelsNgHawk) {
  const auto systems = fig1_systems();
  ASSERT_EQ(systems.size(), 3u);
  EXPECT_EQ(systems[0].name, "Juwels Booster");
  EXPECT_EQ(systems[1].name, "SuperMUC-NG");
  EXPECT_EQ(systems[2].name, "Hawk");
}

}  // namespace
}  // namespace greenhpc::embodied
