#include "embodied/components.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace greenhpc::embodied {
namespace {

TEST(Components, SpecAggregates) {
  const ProcessorSpec epyc = amd_epyc_7742();
  EXPECT_EQ(epyc.total_die_count(), 9);
  EXPECT_DOUBLE_EQ(epyc.total_die_area_mm2(), 8 * 74.0 + 416.0);
}

TEST(Components, ProcessorEmbodiedComposition) {
  ActModel m;
  const ProcessorSpec skx = intel_xeon_8174();
  const Carbon total = processor_embodied(m, skx);
  const Carbon die = m.logic_die(694.0, ProcessNode::N14);
  const Carbon pkg = m.packaging(1, skx.substrate_cm2, 0.0);
  EXPECT_NEAR(total.kilograms(), (die + pkg).kilograms(), 1e-9);
}

TEST(Components, HbmAndOverheadIncluded) {
  ActModel m;
  const ProcessorSpec a100 = nvidia_a100_sxm();
  ProcessorSpec bare = a100;
  bare.hbm_gb = 0.0;
  bare.module_overhead_kg = 0.0;
  const double delta =
      processor_embodied(m, a100).kilograms() - processor_embodied(m, bare).kilograms();
  EXPECT_NEAR(delta,
              m.dram(40.0, DramType::HBM2e).kilograms() + a100.module_overhead_kg, 1e-9);
}

TEST(Components, A100InLiEtAlRange) {
  // Li et al. [37] class estimates for an A100 module land in the
  // 100-250 kg range; our calibrated value must stay in that band.
  ActModel m;
  const double kg = processor_embodied(m, nvidia_a100_sxm()).kilograms();
  EXPECT_GT(kg, 100.0);
  EXPECT_LT(kg, 260.0);
}

TEST(Components, ChipletCpuCheaperThanMonolithicSameArea) {
  // Same total silicon, split into chiplets, yields better -> less carbon
  // per functional processor (before extra packaging).
  ActModel m;
  ProcessorSpec mono;
  mono.name = "mono";
  mono.chiplets = {{592.0, ProcessNode::N7, 1}};
  mono.substrate_cm2 = 43.5;
  ProcessorSpec split;
  split.name = "split";
  split.chiplets = {{74.0, ProcessNode::N7, 8}};
  split.substrate_cm2 = 43.5;
  const double mono_die = m.logic_die(592.0, ProcessNode::N7).kilograms();
  const double split_die = 8.0 * m.logic_die(74.0, ProcessNode::N7).kilograms();
  EXPECT_GT(mono_die, split_die);
  // With packaging included the gap narrows but chiplets still win at
  // these areas.
  EXPECT_GT(processor_embodied(m, mono).kilograms(),
            processor_embodied(m, split).kilograms() - 4.0);
}

TEST(Components, GpuDominatesCpuPerUnit) {
  // The paper: "GPUs have a significantly higher carbon embodied footprint
  // than the others ... attributed to the larger die area of GPUs."
  ActModel m;
  const double gpu = processor_embodied(m, nvidia_a100_sxm()).kilograms();
  const double cpu = processor_embodied(m, amd_epyc_7402()).kilograms();
  EXPECT_GT(gpu, 3.0 * cpu);
}

TEST(Components, MemoryAndStorageHelpers) {
  ActModel m;
  EXPECT_DOUBLE_EQ(memory_embodied(m, 64.0, DramType::DDR4).grams(),
                   m.dram(64.0, DramType::DDR4).grams());
  EXPECT_DOUBLE_EQ(storage_embodied(m, 1e6, StorageType::HDD).grams(),
                   m.storage(1e6, StorageType::HDD).grams());
}

TEST(Components, EmptyChipletListThrows) {
  ActModel m;
  ProcessorSpec empty;
  empty.name = "empty";
  EXPECT_THROW((void)processor_embodied(m, empty), greenhpc::InvalidArgument);
  ProcessorSpec bad;
  bad.name = "bad";
  bad.chiplets = {{100.0, ProcessNode::N7, 0}};
  EXPECT_THROW((void)processor_embodied(m, bad), greenhpc::InvalidArgument);
}

}  // namespace
}  // namespace greenhpc::embodied
