#include "embodied/metrics.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace greenhpc::embodied {
namespace {

TEST(Metrics, OperationalCarbon) {
  // 1 MW for 1 day at 400 g/kWh = 9.6 t.
  const Carbon c = operational_carbon(megawatts(1.0), days(1.0), grams_per_kwh(400.0));
  EXPECT_NEAR(c.tonnes(), 9.6, 1e-9);
  EXPECT_DOUBLE_EQ(
      operational_carbon(watts(0.0), days(1.0), grams_per_kwh(400.0)).grams(), 0.0);
}

TEST(Metrics, AmortizedEmbodiedLinear) {
  const Carbon device = tonnes_co2(6.0);
  const Carbon year = amortized_embodied(device, days(365.0), days(6 * 365.0));
  EXPECT_NEAR(year.tonnes(), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(amortized_embodied(device, seconds(0.0), days(365.0)).grams(), 0.0);
  EXPECT_THROW((void)amortized_embodied(device, days(1.0), seconds(0.0)),
               greenhpc::InvalidArgument);
}

TEST(Metrics, CarbonMetricsDerivedQuantities) {
  CarbonMetrics m;
  m.embodied = kilograms_co2(2.0);
  m.operational = kilograms_co2(3.0);
  m.delay = seconds(10.0);
  m.energy = joules(100.0);
  EXPECT_DOUBLE_EQ(m.total().kilograms(), 5.0);
  EXPECT_DOUBLE_EQ(m.cdp(), 5000.0 * 10.0);
  EXPECT_DOUBLE_EQ(m.cep(), 5000.0 * 100.0);
  EXPECT_DOUBLE_EQ(m.edp(), 1000.0);
}

TEST(Metrics, FlopsPerGramBasics) {
  // 1 PFLOPS for a year: 3.156e22 FLOP. Carbon: 100 t embodied + 1 MW at
  // 100 g/kWh for a year = 876 t -> 976 t total.
  const double score = flops_per_gram(1.0, days(365.0), tonnes_co2(100.0),
                                      megawatts(1.0), grams_per_kwh(100.0));
  const double flops = 1e15 * 365.0 * 86400.0;
  const double grams = (100.0 + 876.0) * 1e6;
  EXPECT_NEAR(score, flops / grams, 1.0);
}

TEST(Metrics, CleanerGridImprovesScore) {
  const double clean = flops_per_gram(10.0, days(365.0 * 6), tonnes_co2(2000.0),
                                      megawatts(3.0), grams_per_kwh(20.0));
  const double dirty = flops_per_gram(10.0, days(365.0 * 6), tonnes_co2(2000.0),
                                      megawatts(3.0), grams_per_kwh(700.0));
  EXPECT_GT(clean, 5.0 * dirty);
}

TEST(Metrics, FlopsPerGramPreconditions) {
  EXPECT_THROW((void)flops_per_gram(0.0, days(1.0), tonnes_co2(1.0), watts(1.0),
                                    grams_per_kwh(100.0)),
               greenhpc::InvalidArgument);
}

}  // namespace
}  // namespace greenhpc::embodied
