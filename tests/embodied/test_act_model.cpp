#include "embodied/act_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace greenhpc::embodied {
namespace {

TEST(ActModel, YieldIsPoissonInArea) {
  ActModel m;
  const double d0 = ActModel::fab_params(ProcessNode::N7).defect_density_per_cm2;
  EXPECT_NEAR(m.die_yield(100.0, ProcessNode::N7), std::exp(-1.0 * d0), 1e-12);
  EXPECT_NEAR(m.die_yield(826.0, ProcessNode::N7), std::exp(-8.26 * d0), 1e-12);
  // Yield decreases with area.
  EXPECT_GT(m.die_yield(100.0, ProcessNode::N7), m.die_yield(800.0, ProcessNode::N7));
}

TEST(ActModel, NewerNodesCostMorePerArea) {
  ActModel m;
  double prev = 0.0;
  for (ProcessNode node : all_nodes()) {
    const double per_100mm2 = m.logic_die(100.0, node).kilograms();
    EXPECT_GT(per_100mm2, prev) << node_name(node);
    prev = per_100mm2;
  }
}

TEST(ActModel, LogicDieScalesSuperlinearlyWithArea) {
  // Yield loss makes embodied carbon superlinear in area.
  ActModel m;
  const double one = m.logic_die(100.0, ProcessNode::N7).kilograms();
  const double eight = m.logic_die(800.0, ProcessNode::N7).kilograms();
  EXPECT_GT(eight, 8.0 * one);
}

TEST(ActModel, FabGridIntensityScalesEnergyShare) {
  ActModel dirty(ActModel::Config{.fab_grid = grams_per_kwh(1000.0)});
  ActModel clean(ActModel::Config{.fab_grid = grams_per_kwh(100.0)});
  const double d = dirty.logic_die(200.0, ProcessNode::N7).kilograms();
  const double c = clean.logic_die(200.0, ProcessNode::N7).kilograms();
  EXPECT_GT(d, c);
  // With a near-zero-carbon fab grid, only GPA + MPA remain.
  ActModel zero(ActModel::Config{.fab_grid = grams_per_kwh(1e-6)});
  const FabParams& fp = ActModel::fab_params(ProcessNode::N7);
  const double expected =
      2.0 * (fp.gpa_kg_per_cm2 + fp.mpa_kg_per_cm2) / zero.die_yield(200.0, ProcessNode::N7);
  EXPECT_NEAR(zero.logic_die(200.0, ProcessNode::N7).kilograms(), expected, 1e-7);
}

TEST(ActModel, DramPerGbCalibration) {
  ActModel m;  // default fab grid 620 g/kWh
  EXPECT_NEAR(m.dram(1.0, DramType::DDR4).kilograms(), 0.90, 0.02);
  EXPECT_LT(m.dram(1.0, DramType::DDR5).kilograms(),
            m.dram(1.0, DramType::DDR4).kilograms());
  EXPECT_GT(m.dram(1.0, DramType::HBM2e).kilograms(),
            m.dram(1.0, DramType::DDR4).kilograms());
}

TEST(ActModel, StoragePerGbCalibration) {
  ActModel m;
  EXPECT_NEAR(m.storage(1.0, StorageType::HDD).kilograms(), 0.014, 0.002);
  // SSD embodied per GB is roughly an order of magnitude above HDD.
  EXPECT_GT(m.storage(1.0, StorageType::SSD).kilograms(),
            5.0 * m.storage(1.0, StorageType::HDD).kilograms());
}

TEST(ActModel, MemoryScalesLinearlyInCapacity) {
  ActModel m;
  EXPECT_NEAR(m.dram(128.0, DramType::DDR4).kilograms(),
              128.0 * m.dram(1.0, DramType::DDR4).kilograms(), 1e-9);
  EXPECT_DOUBLE_EQ(m.dram(0.0, DramType::DDR4).grams(), 0.0);
}

TEST(ActModel, PackagingComposition) {
  ActModel m;
  const Carbon none = m.packaging(0, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(none.grams(), 0.0);
  const Carbon pkg = m.packaging(4, 40.0, 10.0);
  const auto& cfg = m.config();
  EXPECT_NEAR(pkg.kilograms(),
              4 * cfg.packaging_per_die_kg + 40.0 * cfg.substrate_per_cm2_kg +
                  10.0 * cfg.interposer_per_cm2_kg,
              1e-9);
}

TEST(ActModel, Preconditions) {
  ActModel m;
  EXPECT_THROW((void)m.logic_die(0.0, ProcessNode::N7), greenhpc::InvalidArgument);
  EXPECT_THROW((void)m.die_yield(-5.0, ProcessNode::N7), greenhpc::InvalidArgument);
  EXPECT_THROW((void)m.dram(-1.0, DramType::DDR4), greenhpc::InvalidArgument);
  EXPECT_THROW((void)m.storage(-1.0, StorageType::HDD), greenhpc::InvalidArgument);
  EXPECT_THROW((void)m.packaging(-1, 0.0), greenhpc::InvalidArgument);
  EXPECT_THROW(ActModel(ActModel::Config{.fab_grid = grams_per_kwh(0.0)}),
               greenhpc::InvalidArgument);
}

TEST(ActModel, NodeNames) {
  EXPECT_STREQ(node_name(ProcessNode::N7), "7nm");
  EXPECT_STREQ(node_name(ProcessNode::N28), "28nm");
  EXPECT_EQ(all_nodes().size(), 6u);
}

}  // namespace
}  // namespace greenhpc::embodied
