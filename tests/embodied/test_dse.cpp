#include "embodied/dse.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace greenhpc::embodied {
namespace {

DesignSpaceExplorer make_explorer(const ActModel& model) {
  DesignSpaceExplorer::Config cfg;
  cfg.workload.total_ops = 1.0e15;
  cfg.workload.parallel_fraction = 0.97;
  return DesignSpaceExplorer(model, cfg);
}

TEST(Dse, EvaluateIsConsistent) {
  ActModel model;
  auto dse = make_explorer(model);
  const DesignPoint p{ProcessNode::N7, 32, 2.5, 4};
  const auto ev = dse.evaluate(p, grams_per_kwh(300.0));
  EXPECT_GT(ev.metrics.delay.seconds(), 0.0);
  EXPECT_GT(ev.metrics.energy.joules(), 0.0);
  EXPECT_GT(ev.device_embodied.grams(), 0.0);
  EXPECT_GT(ev.metrics.operational.grams(), 0.0);
  EXPECT_GT(ev.metrics.embodied.grams(), 0.0);
  // Energy == power x delay by construction.
  EXPECT_NEAR(ev.metrics.energy.joules(),
              ev.power.watts() * ev.metrics.delay.seconds(), 1e-6);
}

TEST(Dse, MoreCoresFasterButDiminishing) {
  ActModel model;
  auto dse = make_explorer(model);
  const auto c16 = dse.evaluate({ProcessNode::N7, 16, 2.5, 2}, grams_per_kwh(300.0));
  const auto c64 = dse.evaluate({ProcessNode::N7, 64, 2.5, 2}, grams_per_kwh(300.0));
  EXPECT_LT(c64.metrics.delay, c16.metrics.delay);
  // Amdahl: 4x cores must give less than 4x speedup at f = 0.97.
  EXPECT_GT(c64.metrics.delay.seconds() * 4.0, c16.metrics.delay.seconds());
}

TEST(Dse, HigherFrequencyCostsSuperlinearPower) {
  ActModel model;
  auto dse = make_explorer(model);
  const auto slow = dse.evaluate({ProcessNode::N7, 32, 2.0, 2}, grams_per_kwh(300.0));
  const auto fast = dse.evaluate({ProcessNode::N7, 32, 4.0, 2}, grams_per_kwh(300.0));
  EXPECT_LT(fast.metrics.delay, slow.metrics.delay);
  EXPECT_GT(fast.power.watts(), 2.0 * slow.power.watts() * 0.9);
}

TEST(Dse, ChipletTradeoffHasBothRegimes) {
  ActModel model;
  auto dse = make_explorer(model);
  // Large design on a mature node: ~620 mm^2 monolithic -> yield pain;
  // chiplets win despite the extra bonding and D2D PHYs.
  const auto big_mono = dse.evaluate({ProcessNode::N28, 128, 2.0, 1}, grams_per_kwh(300.0));
  const auto big_split = dse.evaluate({ProcessNode::N28, 128, 2.0, 4}, grams_per_kwh(300.0));
  EXPECT_GT(big_mono.device_embodied.grams(), big_split.device_embodied.grams());
  // Small design on a dense node: the die is tiny either way, so the
  // packaging overhead makes chiplets a net loss.
  const auto small_mono = dse.evaluate({ProcessNode::N5, 16, 2.0, 1}, grams_per_kwh(300.0));
  const auto small_split = dse.evaluate({ProcessNode::N5, 16, 2.0, 4}, grams_per_kwh(300.0));
  EXPECT_LT(small_mono.device_embodied.grams(), small_split.device_embodied.grams());
}

TEST(Dse, ObjectiveValuesMatchMetrics) {
  ActModel model;
  auto dse = make_explorer(model);
  const auto ev = dse.evaluate({ProcessNode::N7, 32, 2.5, 2}, grams_per_kwh(250.0));
  EXPECT_DOUBLE_EQ(ev.objective_value(Objective::Delay), ev.metrics.delay.seconds());
  EXPECT_DOUBLE_EQ(ev.objective_value(Objective::Energy), ev.metrics.energy.joules());
  EXPECT_DOUBLE_EQ(ev.objective_value(Objective::Edp), ev.metrics.edp());
  EXPECT_DOUBLE_EQ(ev.objective_value(Objective::TotalCarbon),
                   ev.metrics.total().grams());
  EXPECT_DOUBLE_EQ(ev.objective_value(Objective::Cdp), ev.metrics.cdp());
  EXPECT_DOUBLE_EQ(ev.objective_value(Objective::Cep), ev.metrics.cep());
}

TEST(Dse, BestFindsMinimum) {
  ActModel model;
  auto dse = make_explorer(model);
  const auto grid = dse.default_grid();
  ASSERT_GT(grid.size(), 100u);
  const auto best = dse.best(grid, Objective::Cdp, grams_per_kwh(300.0));
  // Verify optimality against a direct scan.
  for (const auto& p : grid) {
    EXPECT_GE(dse.evaluate(p, grams_per_kwh(300.0)).objective_value(Objective::Cdp),
              best.objective_value(Objective::Cdp) - 1e-9);
  }
}

TEST(Dse, PaperClaimOptimumShiftsWithObjective) {
  // Section 2.1: "the optimal design point could change depending on the
  // design objective metric such as CDP, CEP, and others."
  ActModel model;
  auto dse = make_explorer(model);
  const auto grid = dse.default_grid();
  const auto by_delay = dse.best(grid, Objective::Delay, grams_per_kwh(300.0));
  const auto by_carbon = dse.best(grid, Objective::TotalCarbon, grams_per_kwh(300.0));
  const bool differs = by_delay.point.node != by_carbon.point.node ||
                       by_delay.point.cores != by_carbon.point.cores ||
                       by_delay.point.freq_ghz != by_carbon.point.freq_ghz ||
                       by_delay.point.chiplet_count != by_carbon.point.chiplet_count;
  EXPECT_TRUE(differs);
}

TEST(Dse, PaperClaimOptimumShiftsWithGridIntensity) {
  // Section 2.1: the design depends on "the carbon intensity of the power
  // grid at which the processor will operate". In a near-zero-carbon grid
  // embodied dominates (favouring cheap-to-fab designs); in a coal grid
  // operational dominates (favouring energy-efficient ones).
  ActModel model;
  auto dse = make_explorer(model);
  const auto grid = dse.default_grid();
  const auto clean = dse.best(grid, Objective::TotalCarbon, grams_per_kwh(5.0));
  const auto dirty = dse.best(grid, Objective::TotalCarbon, grams_per_kwh(1025.0));
  const bool differs = clean.point.node != dirty.point.node ||
                       clean.point.cores != dirty.point.cores ||
                       clean.point.freq_ghz != dirty.point.freq_ghz ||
                       clean.point.chiplet_count != dirty.point.chiplet_count;
  EXPECT_TRUE(differs);
  // The dirty-grid optimum must consume less energy.
  const auto clean_eval = dse.evaluate(clean.point, grams_per_kwh(300.0));
  const auto dirty_eval = dse.evaluate(dirty.point, grams_per_kwh(300.0));
  EXPECT_LE(dirty_eval.metrics.energy.joules(), clean_eval.metrics.energy.joules());
}

TEST(Dse, ParetoFrontIsNonDominatedAndSorted) {
  ActModel model;
  auto dse = make_explorer(model);
  const auto grid = dse.default_grid();
  const auto front = dse.pareto_front(grid, grams_per_kwh(300.0));
  ASSERT_GE(front.size(), 3u);
  for (std::size_t i = 1; i < front.size(); ++i) {
    // Strictly increasing delay, strictly decreasing carbon along the front.
    EXPECT_GT(front[i].metrics.delay.seconds(), front[i - 1].metrics.delay.seconds());
    EXPECT_LT(front[i].metrics.total().grams(), front[i - 1].metrics.total().grams());
  }
  // No candidate dominates any front member.
  const auto& mid = front[front.size() / 2];
  for (const auto& p : grid) {
    const auto ev = dse.evaluate(p, grams_per_kwh(300.0));
    const bool dominates = ev.metrics.delay.seconds() < mid.metrics.delay.seconds() &&
                           ev.metrics.total().grams() < mid.metrics.total().grams();
    EXPECT_FALSE(dominates);
  }
}

TEST(Dse, ParetoEndpointsMatchSingleObjectiveOptima) {
  ActModel model;
  auto dse = make_explorer(model);
  const auto grid = dse.default_grid();
  const auto front = dse.pareto_front(grid, grams_per_kwh(300.0));
  const auto fastest = dse.best(grid, Objective::Delay, grams_per_kwh(300.0));
  const auto cleanest = dse.best(grid, Objective::TotalCarbon, grams_per_kwh(300.0));
  EXPECT_NEAR(front.front().metrics.delay.seconds(), fastest.metrics.delay.seconds(),
              1e-6);
  EXPECT_NEAR(front.back().metrics.total().grams(), cleanest.metrics.total().grams(),
              1e-6);
}

TEST(Dse, InvalidDesignsThrow) {
  ActModel model;
  auto dse = make_explorer(model);
  EXPECT_THROW((void)dse.evaluate({ProcessNode::N7, 0, 2.0, 1}, grams_per_kwh(100.0)),
               greenhpc::InvalidArgument);
  EXPECT_THROW((void)dse.evaluate({ProcessNode::N7, 30, 2.0, 4}, grams_per_kwh(100.0)),
               greenhpc::InvalidArgument);  // 30 % 4 != 0
  EXPECT_THROW((void)dse.evaluate({ProcessNode::N28, 32, 4.0, 2}, grams_per_kwh(100.0)),
               greenhpc::InvalidArgument);  // over 28nm f_max
  EXPECT_THROW((void)dse.best({}, Objective::Cdp, grams_per_kwh(100.0)),
               greenhpc::InvalidArgument);
}

TEST(Dse, NodeTechTableMonotonicities) {
  double prev_area = 1e9, prev_dyn = 1e9;
  for (ProcessNode n : all_nodes()) {
    const CoreTech& t = core_tech(n);
    EXPECT_LT(t.core_area_mm2, prev_area);
    EXPECT_LT(t.dyn_watt_at_1ghz, prev_dyn);
    prev_area = t.core_area_mm2;
    prev_dyn = t.dyn_watt_at_1ghz;
  }
}

}  // namespace
}  // namespace greenhpc::embodied
