#pragma once
// Shared fixtures/builders for greenhpc tests.

#include <algorithm>
#include <string>
#include <vector>

#include "hpcsim/cluster.hpp"
#include "hpcsim/job.hpp"
#include "hpcsim/policy.hpp"
#include "util/time_series.hpp"

namespace greenhpc::testing {

/// Flat carbon-intensity trace of `value` g/kWh covering `span`.
inline util::TimeSeries constant_trace(double value, Duration span,
                                       Duration step = minutes(15.0)) {
  const auto n = static_cast<std::size_t>(span.seconds() / step.seconds());
  return util::TimeSeries(seconds(0.0), step, std::vector<double>(n, value));
}

/// Square-wave trace alternating `lo` and `hi` every `half_period`.
inline util::TimeSeries square_trace(double lo, double hi, Duration half_period,
                                     Duration span, Duration step = minutes(15.0)) {
  util::TimeSeries ts(seconds(0.0), step);
  const auto n = static_cast<std::size_t>(span.seconds() / step.seconds());
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * step.seconds();
    const auto phase = static_cast<long long>(t / half_period.seconds());
    ts.push_back(phase % 2 == 0 ? lo : hi);
  }
  return ts;
}

/// Small homogeneous test cluster.
inline hpcsim::ClusterConfig small_cluster(int nodes = 16) {
  hpcsim::ClusterConfig c;
  c.nodes = nodes;
  c.node_tdp = watts(500.0);
  c.node_idle = watts(100.0);
  c.min_cap_fraction = 0.5;
  c.tick = minutes(1.0);
  return c;
}

/// A rigid job with sane defaults, customizable via designated assignment
/// after the call.
inline hpcsim::JobSpec rigid_job(int id, Duration submit, int nodes, Duration runtime) {
  hpcsim::JobSpec j;
  j.id = id;
  j.user = "u" + std::to_string(id % 4);
  j.project = "p" + std::to_string(id % 2);
  j.submit = submit;
  j.kind = hpcsim::JobKind::Rigid;
  j.nodes_requested = nodes;
  j.nodes_used = nodes;
  j.min_nodes = nodes;
  j.max_nodes = nodes;
  j.runtime = runtime;
  j.walltime = runtime * 1.5;
  j.node_power = watts(400.0);
  j.power_alpha = 0.4;
  j.scale_gamma = 0.9;
  return j;
}

/// A malleable job sized `natural` with range [natural/2, natural*2].
inline hpcsim::JobSpec malleable_job(int id, Duration submit, int natural,
                                     Duration runtime, int cluster_nodes) {
  hpcsim::JobSpec j = rigid_job(id, submit, natural, runtime);
  j.kind = hpcsim::JobKind::Malleable;
  j.min_nodes = std::max(1, natural / 2);
  j.max_nodes = std::min(cluster_nodes, natural * 2);
  return j;
}

/// Scheduler that starts every pending job immediately if possible
/// (no queue discipline) — minimal driver for engine tests.
class GreedyScheduler final : public hpcsim::SchedulingPolicy {
 public:
  void on_tick(hpcsim::SimulationView& view) override {
    const std::vector<hpcsim::JobId> pending = view.pending_jobs();
    for (hpcsim::JobId id : pending) {
      const auto& spec = view.spec(id);
      const int nodes = spec.kind == hpcsim::JobKind::Rigid
                            ? spec.nodes_requested
                            : std::clamp(spec.nodes_used, spec.min_nodes, spec.max_nodes);
      (void)view.start(id, nodes);
    }
  }
  [[nodiscard]] std::string name() const override { return "greedy-test"; }
};

}  // namespace greenhpc::testing
