// Green datacenter: operating one machine with the full section-3 stack —
// carbon-aware power budgets (3.1), malleable jobs (3.2), carbon-aware
// backfill with checkpointing (3.3) — and comparing against the
// carbon-blind baseline on the same inputs.

#include <cstdio>
#include <memory>

#include "carbon/forecast.hpp"
#include "core/scenario.hpp"
#include "powerstack/policies.hpp"
#include "sched/carbon_aware.hpp"
#include "sched/decorators.hpp"
#include "sched/easy_backfill.hpp"
#include "util/table.hpp"

int main() {
  using namespace greenhpc;

  core::ScenarioConfig cfg;
  cfg.cluster.nodes = 256;
  cfg.region = carbon::Region::UnitedKingdom;  // volatile, wind-heavy grid
  cfg.trace_span = days(12.0);
  cfg.workload.job_count = 520;  // moderate load leaves slack for shifting
  cfg.workload.span = days(7.0);
  cfg.workload.max_job_nodes = 96;
  cfg.workload.malleable_fraction = 0.4;
  cfg.workload.checkpointable_fraction = 0.5;
  cfg.seed = 31;
  core::ScenarioRunner runner(cfg);

  // Baseline: EASY backfill, no power management.
  const auto baseline = runner.run("easy (carbon-blind)", [] {
    return std::make_unique<sched::EasyBackfillScheduler>();
  });

  // The full green stack.
  const auto green = runner.run(
      "carbon-easy + ckpt + malleable",
      [&] {
        sched::CarbonAwareEasyScheduler::Config ca;
        ca.max_hold = hours(12.0);
        auto carbon_sched = std::make_unique<sched::CarbonAwareEasyScheduler>(
            ca, std::make_shared<carbon::HarmonicForecaster>(days(3.0)));
        auto with_ckpt = std::make_unique<sched::CheckpointDecorator>(
            sched::CheckpointDecorator::Config{}, std::move(carbon_sched));
        return std::make_unique<sched::MalleableDecorator>(
            sched::MalleableDecorator::Config{}, std::move(with_ckpt));
      },
      [] {
        return std::make_unique<powerstack::IntensityProportionalPolicy>(
            powerstack::IntensityProportionalPolicy::Config{
                .ci_clean = 180.0, .ci_dirty = 420.0, .min_fraction = 0.6,
                .max_fraction = 1.0});
      });

  util::Table table({"stack", "carbon [t]", "g/node-h", "wait [h]", "util [%]",
                     "green energy [%]", "done"});
  for (const auto* o : {&baseline, &green}) {
    table.add_row({o->scheduler, util::Table::fmt(o->total_carbon_t, 1),
                   util::Table::fmt(o->carbon_per_node_hour_g, 1),
                   util::Table::fmt(o->mean_wait_h, 2),
                   util::Table::fmt(100.0 * o->utilization, 1),
                   util::Table::fmt(100.0 * o->green_energy_share, 1),
                   std::to_string(o->completed)});
  }
  std::printf("%s\n", table.str("Carbon-blind vs full green stack "
                                "(256 nodes, UK grid, 1 week)").c_str());
  std::printf("Carbon per delivered node-hour: %.1f -> %.1f g (%.1f%% reduction)\n",
              baseline.carbon_per_node_hour_g, green.carbon_per_node_hour_g,
              100.0 * (1.0 - green.carbon_per_node_hour_g /
                                 baseline.carbon_per_node_hour_g));
  return 0;
}
