// Job carbon reports: the section-3.4 user-facing pipeline.
//
// Simulates a week of jobs, pushes the system telemetry through the
// DCDB-style sensor store, derives per-job carbon profiles, prints the
// reports users would receive (with the car-driving analogy), and shows
// the per-user accounting with green-period incentive billing.

#include <cstdio>
#include <memory>

#include "accounting/incentives.hpp"
#include "accounting/job_carbon.hpp"
#include "accounting/ledger.hpp"
#include "core/scenario.hpp"
#include "hpcsim/simulator.hpp"
#include "sched/easy_backfill.hpp"
#include "telemetry/sensor_store.hpp"
#include "util/table.hpp"

int main() {
  using namespace greenhpc;

  // Simulate with a telemetry sink attached (the DCDB role).
  core::ScenarioConfig cfg;
  cfg.cluster.nodes = 128;
  cfg.region = carbon::Region::Germany;
  cfg.trace_span = days(9.0);
  cfg.workload.job_count = 250;
  cfg.workload.span = days(5.0);
  cfg.workload.max_job_nodes = 48;
  cfg.workload.over_allocation_mean = 1.4;  // the SuperMUC-NG observation
  cfg.seed = 12;
  core::ScenarioRunner runner(cfg);

  telemetry::SensorStore store;
  hpcsim::Simulator::Config sim_cfg;
  sim_cfg.cluster = cfg.cluster;
  sim_cfg.carbon_intensity = runner.trace();
  sim_cfg.telemetry = &store;
  hpcsim::Simulator sim(sim_cfg, runner.jobs());
  sched::EasyBackfillScheduler sched;
  const auto result = sim.run(sched);

  // Site-level accounting straight from telemetry.
  const Energy site_energy = store.energy("system.power", seconds(0.0), result.makespan);
  const Carbon site_carbon =
      store.carbon("system.power", "system.ci", seconds(0.0), result.makespan);
  std::printf("Telemetry store: %zu sensors; site total %.1f MWh, %.2f t CO2e\n\n",
              store.size(), site_energy.megawatt_hours(), site_carbon.tonnes());

  // Individual job reports (first three completed jobs).
  const auto profiles = accounting::profile_jobs(result, cfg.cluster);
  std::printf("--- sample job reports ------------------------------------\n");
  for (std::size_t i = 0; i < 3 && i < profiles.size(); ++i) {
    std::printf("%s\n", accounting::format_job_report(profiles[i]).c_str());
  }

  // Per-project accounting with incentive billing.
  const auto projects = accounting::aggregate_by_project(profiles);
  util::Table table({"project", "jobs", "carbon [kg]", "car-km", "waste [%]"});
  for (std::size_t i = 0; i < std::min<std::size_t>(projects.size(), 6); ++i) {
    const auto& p = projects[i];
    table.add_row({p.key, std::to_string(p.jobs),
                   util::Table::fmt(p.carbon.kilograms(), 0),
                   util::Table::fmt(p.car_km, 0),
                   util::Table::fmt(100.0 * p.mean_over_allocation_waste, 1)});
  }
  std::printf("%s\n", table.str("Per-project carbon accounting").c_str());

  accounting::IncentiveConfig inc;
  inc.pricing.green_discount = 0.3;
  const auto outcome =
      accounting::evaluate_incentive(result.jobs, runner.trace(), inc, 9);
  std::printf("With a 30%% green-period discount: %.1f%% of jobs shift, carbon falls "
              "%.1f%%, billed node-hours are %.1f%% of raw\n\n",
              100.0 * outcome.shifted_job_fraction, 100.0 * outcome.carbon_reduction(),
              100.0 * outcome.billed_node_hour_factor);

  // Project ledger: grants with carbon allowances, billed at the
  // incentive price (section 3.4's "automatic incentivized HPC job
  // budget accounting").
  accounting::ProjectLedger ledger(runner.trace(), inc.pricing);
  for (const auto& p : projects) {
    ledger.grant(p.key, /*node_hours=*/3000.0, tonnes_co2(1.0));
  }
  ledger.charge_all(result.jobs);
  std::printf("--- ledger statements (first two projects) ------------------\n");
  int shown = 0;
  for (const auto& account : ledger.accounts()) {
    if (shown++ >= 2) break;
    std::printf("%s\n", ledger.statement(account.project).c_str());
  }
  return 0;
}
