// Federated dispatch: spatial carbon shifting across sites.
//
// Fig. 2 shows an ~8x carbon-intensity spread across European grids; the
// strongest operational lever a federation has is therefore *where* jobs
// run. This example builds a two-site federation (a clean hydro site and
// a coal-heavy site), dispatches the same job stream carbon-blind and
// carbon-aware, and prints the placement and the carbon outcome.

#include <cstdio>
#include <memory>

#include "core/federation.hpp"
#include "hpcsim/workload.hpp"
#include "sched/easy_backfill.hpp"
#include "util/table.hpp"

int main() {
  using namespace greenhpc;
  using namespace greenhpc::core;

  Federation::Config cfg;
  for (auto [name, region] : {std::pair{"Trondheim (NO)", carbon::Region::Norway},
                              std::pair{"Katowice (PL)", carbon::Region::Poland}}) {
    SiteSpec site;
    site.name = name;
    site.cluster.nodes = 96;
    site.cluster.tick = minutes(2.0);
    site.region = region;
    cfg.sites.push_back(site);
  }
  cfg.trace_span = days(9.0);
  cfg.seed = 5;
  Federation fed(cfg);

  hpcsim::WorkloadConfig wl;
  wl.job_count = 400;
  wl.span = days(5.0);
  wl.max_job_nodes = 48;
  const auto jobs = hpcsim::WorkloadGenerator(wl, 3).generate();
  const auto easy = [] { return std::make_unique<sched::EasyBackfillScheduler>(); };

  util::Table table({"dispatch", "NO jobs", "PL jobs", "job carbon [t]",
                     "mean wait [h]", "done"});
  for (DispatchPolicy policy : {DispatchPolicy::RoundRobin, DispatchPolicy::LeastLoaded,
                                DispatchPolicy::GreenestForecast}) {
    const auto r = fed.run(jobs, policy, easy);
    table.add_row({dispatch_name(policy), std::to_string(r.jobs_per_site[0]),
                   std::to_string(r.jobs_per_site[1]),
                   util::Table::fmt(r.job_carbon.tonnes(), 2),
                   util::Table::fmt(r.mean_wait_hours, 2), std::to_string(r.completed)});
  }
  std::printf("%s\n", table.str("Two-site federation: Norwegian hydro vs Polish coal").c_str());
  std::printf("The greenest-forecast dispatcher sends nearly everything north — the "
              "~25x intensity gap makes even long queues at the clean site worth it, "
              "until the load penalty redirects overflow.\n");
  return 0;
}
