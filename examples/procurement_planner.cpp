// Procurement planner: a system architect's workflow for section 2.2.
//
// Given the site's budgets (cost, power feed, machine-room size) and a
// total lifetime carbon budget, the planner:
//   * finds the best split of the carbon budget between manufacturing and
//     operation,
//   * optimizes the node mix inside the resulting embodied budget,
//   * reports the Carbon500-style efficiency of the chosen design.

#include <cstdio>

#include "procure/carbon500.hpp"
#include "procure/catalog.hpp"
#include "procure/tradeoff.hpp"
#include "util/table.hpp"

int main() {
  using namespace greenhpc;
  using namespace greenhpc::procure;

  const embodied::ActModel act;
  const ProcurementOptimizer optimizer(default_catalog(act));

  // Site envelope: a mid-size European center.
  TradeoffConfig cfg;
  cfg.total_budget = tonnes_co2(40000.0);
  cfg.lifetime = days(365.0 * 6.0);
  cfg.grid = grams_per_kwh(250.0);  // regional average
  cfg.base.cost_budget_keur = 1.5e6;
  cfg.base.power_limit = megawatts(30.0);
  cfg.base.max_nodes = 20000;

  std::printf("Catalog:\n");
  util::Table catalog_table({"node type", "perf [TF]", "power [W]",
                             "embodied [kg]", "cost [kEUR]"});
  for (const auto& b : optimizer.catalog()) {
    catalog_table.add_row({b.name, util::Table::fmt(b.perf_tflops, 1),
                           util::Table::fmt(b.power.watts(), 0),
                           util::Table::fmt(b.embodied.kilograms(), 0),
                           util::Table::fmt(b.cost_keur, 0)});
  }
  std::printf("%s\n", catalog_table.str().c_str());

  const auto sweep = sweep_budget_split(optimizer, cfg, 19);
  const auto& best = best_split(sweep);
  std::printf("Best carbon-budget split: %.0f%% embodied / %.0f%% operational\n\n",
              100.0 * best.embodied_fraction, 100.0 * (1.0 - best.embodied_fraction));

  util::Table plan_table({"node type", "count"});
  for (std::size_t i = 0; i < optimizer.catalog().size(); ++i) {
    plan_table.add_row({optimizer.catalog()[i].name,
                        std::to_string(best.plan.counts[i])});
  }
  std::printf("%s\n", plan_table.str("Chosen system configuration").c_str());
  std::printf("Procured:   %.1f PF nameplate, %d nodes, %.1f MW, %.0f t embodied, "
              "%.0f MEUR\n",
              best.procured_pflops, best.plan.total_nodes(),
              best.plan.power(optimizer.catalog()).megawatts(),
              best.plan.embodied(optimizer.catalog()).tonnes(),
              best.plan.cost_keur(optimizer.catalog()) / 1000.0);
  std::printf("Delivered:  %.1f PF sustained at the carbon-sustainable power of "
              "%.2f MW\n\n", best.delivered_pflops, best.sustainable_power.megawatts());

  // Carbon500 card for the design.
  Carbon500Entry entry;
  entry.system = "planned system";
  entry.region = carbon::Region::Germany;
  entry.rmax_pflops = best.delivered_pflops;
  entry.avg_power = best.sustainable_power;
  entry.embodied = best.plan.embodied(optimizer.catalog());
  entry.lifetime_years = 6;
  const auto ranked = rank({entry});
  std::printf("Carbon500 score: %.2f GFLOP per gram CO2e over the lifetime\n",
              ranked[0].score_gflops_per_gram);
  return 0;
}
