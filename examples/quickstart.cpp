// Quickstart: the five-minute tour of greenhpc.
//
// 1. Model the embodied carbon of an HPC system (section 2 of the paper).
// 2. Generate a grid carbon-intensity trace for its region (Fig. 2).
// 3. Simulate a week of jobs under a carbon-aware scheduler (section 3).
// 4. Print the total footprint: embodied share + operational emissions.

#include <cstdio>
#include <memory>

#include "carbon/forecast.hpp"
#include "core/scenario.hpp"
#include "core/site_model.hpp"
#include "embodied/systems.hpp"
#include "sched/carbon_aware.hpp"

int main() {
  using namespace greenhpc;

  // --- 1. embodied carbon of a reference system -------------------------
  const embodied::ActModel act;
  const auto system = embodied::supermuc_ng();
  const auto breakdown = embodied::embodied_breakdown(act, system);
  std::printf("SuperMUC-NG embodied carbon: %.0f t "
              "(CPU %.0f t, DRAM %.0f t, storage %.0f t)\n",
              breakdown.total().tonnes(), breakdown.cpu.tonnes(),
              breakdown.dram.tonnes(), breakdown.storage.tonnes());

  // --- 2. a week of German grid carbon intensity ------------------------
  carbon::GridModel grid(carbon::Region::Germany, /*seed=*/1);
  const auto trace = grid.generate(seconds(0.0), days(7.0), minutes(15.0));
  const auto summary = trace.summary();
  std::printf("German grid, one simulated week: mean %.0f g/kWh "
              "(min %.0f, max %.0f)\n", summary.mean, summary.min, summary.max);

  // --- 3. simulate a cluster under a carbon-aware scheduler -------------
  core::ScenarioConfig scenario;
  scenario.cluster.nodes = 128;
  scenario.region = carbon::Region::Germany;
  scenario.trace_span = days(10.0);
  scenario.workload.job_count = 300;
  scenario.workload.span = days(6.0);
  scenario.workload.max_job_nodes = 64;
  scenario.seed = 7;
  core::ScenarioRunner runner(scenario);

  const auto outcome = runner.run("carbon-easy", [] {
    return std::make_unique<sched::CarbonAwareEasyScheduler>(
        sched::CarbonAwareEasyScheduler::Config{},
        std::make_shared<carbon::PersistenceForecaster>());
  });
  std::printf("Simulated week on 128 nodes: %d jobs done, %.1f t CO2e, "
              "%.1f%% of job energy in green periods, mean wait %.2f h\n",
              outcome.completed, outcome.total_carbon_t,
              100.0 * outcome.green_energy_share, outcome.mean_wait_h);

  // --- 4. lifetime footprint composition --------------------------------
  core::SiteModel site(act, system, grams_per_kwh(20.0));  // LRZ hydro contract
  std::printf("Lifetime at a 20 g/kWh site: embodied %.0f t vs operational %.0f t "
              "-> embodied share %.0f%%\n",
              site.embodied_total().tonnes(), site.operational_lifetime().tonnes(),
              100.0 * site.embodied_share());
  return 0;
}
