# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_carbon[1]_include.cmake")
include("/root/repo/build/tests/test_embodied[1]_include.cmake")
include("/root/repo/build/tests/test_telemetry[1]_include.cmake")
include("/root/repo/build/tests/test_facility[1]_include.cmake")
include("/root/repo/build/tests/test_hpcsim[1]_include.cmake")
include("/root/repo/build/tests/test_powerstack[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_procure[1]_include.cmake")
include("/root/repo/build/tests/test_lifecycle[1]_include.cmake")
include("/root/repo/build/tests/test_accounting[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
