file(REMOVE_RECURSE
  "CMakeFiles/test_carbon.dir/carbon/test_forecast.cpp.o"
  "CMakeFiles/test_carbon.dir/carbon/test_forecast.cpp.o.d"
  "CMakeFiles/test_carbon.dir/carbon/test_green_periods.cpp.o"
  "CMakeFiles/test_carbon.dir/carbon/test_green_periods.cpp.o.d"
  "CMakeFiles/test_carbon.dir/carbon/test_grid_model.cpp.o"
  "CMakeFiles/test_carbon.dir/carbon/test_grid_model.cpp.o.d"
  "CMakeFiles/test_carbon.dir/carbon/test_region.cpp.o"
  "CMakeFiles/test_carbon.dir/carbon/test_region.cpp.o.d"
  "CMakeFiles/test_carbon.dir/carbon/test_trace_io.cpp.o"
  "CMakeFiles/test_carbon.dir/carbon/test_trace_io.cpp.o.d"
  "test_carbon"
  "test_carbon.pdb"
  "test_carbon[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_carbon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
