# Empty dependencies file for test_carbon.
# This may be replaced when dependencies are built.
