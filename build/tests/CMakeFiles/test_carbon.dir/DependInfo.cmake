
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/carbon/test_forecast.cpp" "tests/CMakeFiles/test_carbon.dir/carbon/test_forecast.cpp.o" "gcc" "tests/CMakeFiles/test_carbon.dir/carbon/test_forecast.cpp.o.d"
  "/root/repo/tests/carbon/test_green_periods.cpp" "tests/CMakeFiles/test_carbon.dir/carbon/test_green_periods.cpp.o" "gcc" "tests/CMakeFiles/test_carbon.dir/carbon/test_green_periods.cpp.o.d"
  "/root/repo/tests/carbon/test_grid_model.cpp" "tests/CMakeFiles/test_carbon.dir/carbon/test_grid_model.cpp.o" "gcc" "tests/CMakeFiles/test_carbon.dir/carbon/test_grid_model.cpp.o.d"
  "/root/repo/tests/carbon/test_region.cpp" "tests/CMakeFiles/test_carbon.dir/carbon/test_region.cpp.o" "gcc" "tests/CMakeFiles/test_carbon.dir/carbon/test_region.cpp.o.d"
  "/root/repo/tests/carbon/test_trace_io.cpp" "tests/CMakeFiles/test_carbon.dir/carbon/test_trace_io.cpp.o" "gcc" "tests/CMakeFiles/test_carbon.dir/carbon/test_trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/carbon/CMakeFiles/greenhpc_carbon.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/greenhpc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
