file(REMOVE_RECURSE
  "CMakeFiles/test_powerstack.dir/powerstack/test_budget_tree.cpp.o"
  "CMakeFiles/test_powerstack.dir/powerstack/test_budget_tree.cpp.o.d"
  "CMakeFiles/test_powerstack.dir/powerstack/test_policies.cpp.o"
  "CMakeFiles/test_powerstack.dir/powerstack/test_policies.cpp.o.d"
  "CMakeFiles/test_powerstack.dir/powerstack/test_ramp.cpp.o"
  "CMakeFiles/test_powerstack.dir/powerstack/test_ramp.cpp.o.d"
  "test_powerstack"
  "test_powerstack.pdb"
  "test_powerstack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_powerstack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
