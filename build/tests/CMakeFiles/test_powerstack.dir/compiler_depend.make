# Empty compiler generated dependencies file for test_powerstack.
# This may be replaced when dependencies are built.
