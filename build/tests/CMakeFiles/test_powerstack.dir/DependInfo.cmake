
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/powerstack/test_budget_tree.cpp" "tests/CMakeFiles/test_powerstack.dir/powerstack/test_budget_tree.cpp.o" "gcc" "tests/CMakeFiles/test_powerstack.dir/powerstack/test_budget_tree.cpp.o.d"
  "/root/repo/tests/powerstack/test_policies.cpp" "tests/CMakeFiles/test_powerstack.dir/powerstack/test_policies.cpp.o" "gcc" "tests/CMakeFiles/test_powerstack.dir/powerstack/test_policies.cpp.o.d"
  "/root/repo/tests/powerstack/test_ramp.cpp" "tests/CMakeFiles/test_powerstack.dir/powerstack/test_ramp.cpp.o" "gcc" "tests/CMakeFiles/test_powerstack.dir/powerstack/test_ramp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/powerstack/CMakeFiles/greenhpc_powerstack.dir/DependInfo.cmake"
  "/root/repo/build/src/hpcsim/CMakeFiles/greenhpc_hpcsim.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/greenhpc_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/greenhpc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
