file(REMOVE_RECURSE
  "CMakeFiles/test_facility.dir/facility/test_cooling.cpp.o"
  "CMakeFiles/test_facility.dir/facility/test_cooling.cpp.o.d"
  "CMakeFiles/test_facility.dir/facility/test_facility_model.cpp.o"
  "CMakeFiles/test_facility.dir/facility/test_facility_model.cpp.o.d"
  "CMakeFiles/test_facility.dir/facility/test_weather.cpp.o"
  "CMakeFiles/test_facility.dir/facility/test_weather.cpp.o.d"
  "test_facility"
  "test_facility.pdb"
  "test_facility[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_facility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
