
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/facility/test_cooling.cpp" "tests/CMakeFiles/test_facility.dir/facility/test_cooling.cpp.o" "gcc" "tests/CMakeFiles/test_facility.dir/facility/test_cooling.cpp.o.d"
  "/root/repo/tests/facility/test_facility_model.cpp" "tests/CMakeFiles/test_facility.dir/facility/test_facility_model.cpp.o" "gcc" "tests/CMakeFiles/test_facility.dir/facility/test_facility_model.cpp.o.d"
  "/root/repo/tests/facility/test_weather.cpp" "tests/CMakeFiles/test_facility.dir/facility/test_weather.cpp.o" "gcc" "tests/CMakeFiles/test_facility.dir/facility/test_weather.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/facility/CMakeFiles/greenhpc_facility.dir/DependInfo.cmake"
  "/root/repo/build/src/carbon/CMakeFiles/greenhpc_carbon.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/greenhpc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
