# Empty compiler generated dependencies file for test_procure.
# This may be replaced when dependencies are built.
