file(REMOVE_RECURSE
  "CMakeFiles/test_procure.dir/procure/test_carbon500.cpp.o"
  "CMakeFiles/test_procure.dir/procure/test_carbon500.cpp.o.d"
  "CMakeFiles/test_procure.dir/procure/test_optimizer.cpp.o"
  "CMakeFiles/test_procure.dir/procure/test_optimizer.cpp.o.d"
  "CMakeFiles/test_procure.dir/procure/test_tradeoff.cpp.o"
  "CMakeFiles/test_procure.dir/procure/test_tradeoff.cpp.o.d"
  "test_procure"
  "test_procure.pdb"
  "test_procure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_procure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
