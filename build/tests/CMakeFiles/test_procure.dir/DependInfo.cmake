
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/procure/test_carbon500.cpp" "tests/CMakeFiles/test_procure.dir/procure/test_carbon500.cpp.o" "gcc" "tests/CMakeFiles/test_procure.dir/procure/test_carbon500.cpp.o.d"
  "/root/repo/tests/procure/test_optimizer.cpp" "tests/CMakeFiles/test_procure.dir/procure/test_optimizer.cpp.o" "gcc" "tests/CMakeFiles/test_procure.dir/procure/test_optimizer.cpp.o.d"
  "/root/repo/tests/procure/test_tradeoff.cpp" "tests/CMakeFiles/test_procure.dir/procure/test_tradeoff.cpp.o" "gcc" "tests/CMakeFiles/test_procure.dir/procure/test_tradeoff.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/procure/CMakeFiles/greenhpc_procure.dir/DependInfo.cmake"
  "/root/repo/build/src/embodied/CMakeFiles/greenhpc_embodied.dir/DependInfo.cmake"
  "/root/repo/build/src/carbon/CMakeFiles/greenhpc_carbon.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/greenhpc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
