file(REMOVE_RECURSE
  "CMakeFiles/test_accounting.dir/accounting/test_incentives.cpp.o"
  "CMakeFiles/test_accounting.dir/accounting/test_incentives.cpp.o.d"
  "CMakeFiles/test_accounting.dir/accounting/test_job_carbon.cpp.o"
  "CMakeFiles/test_accounting.dir/accounting/test_job_carbon.cpp.o.d"
  "CMakeFiles/test_accounting.dir/accounting/test_ledger.cpp.o"
  "CMakeFiles/test_accounting.dir/accounting/test_ledger.cpp.o.d"
  "CMakeFiles/test_accounting.dir/accounting/test_revenue_neutral.cpp.o"
  "CMakeFiles/test_accounting.dir/accounting/test_revenue_neutral.cpp.o.d"
  "test_accounting"
  "test_accounting.pdb"
  "test_accounting[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
