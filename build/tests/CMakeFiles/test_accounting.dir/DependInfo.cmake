
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/accounting/test_incentives.cpp" "tests/CMakeFiles/test_accounting.dir/accounting/test_incentives.cpp.o" "gcc" "tests/CMakeFiles/test_accounting.dir/accounting/test_incentives.cpp.o.d"
  "/root/repo/tests/accounting/test_job_carbon.cpp" "tests/CMakeFiles/test_accounting.dir/accounting/test_job_carbon.cpp.o" "gcc" "tests/CMakeFiles/test_accounting.dir/accounting/test_job_carbon.cpp.o.d"
  "/root/repo/tests/accounting/test_ledger.cpp" "tests/CMakeFiles/test_accounting.dir/accounting/test_ledger.cpp.o" "gcc" "tests/CMakeFiles/test_accounting.dir/accounting/test_ledger.cpp.o.d"
  "/root/repo/tests/accounting/test_revenue_neutral.cpp" "tests/CMakeFiles/test_accounting.dir/accounting/test_revenue_neutral.cpp.o" "gcc" "tests/CMakeFiles/test_accounting.dir/accounting/test_revenue_neutral.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/accounting/CMakeFiles/greenhpc_accounting.dir/DependInfo.cmake"
  "/root/repo/build/src/hpcsim/CMakeFiles/greenhpc_hpcsim.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/greenhpc_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/carbon/CMakeFiles/greenhpc_carbon.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/greenhpc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
