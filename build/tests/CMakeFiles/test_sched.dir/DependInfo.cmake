
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sched/test_carbon_aware.cpp" "tests/CMakeFiles/test_sched.dir/sched/test_carbon_aware.cpp.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/test_carbon_aware.cpp.o.d"
  "/root/repo/tests/sched/test_conservative.cpp" "tests/CMakeFiles/test_sched.dir/sched/test_conservative.cpp.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/test_conservative.cpp.o.d"
  "/root/repo/tests/sched/test_decorators.cpp" "tests/CMakeFiles/test_sched.dir/sched/test_decorators.cpp.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/test_decorators.cpp.o.d"
  "/root/repo/tests/sched/test_easy.cpp" "tests/CMakeFiles/test_sched.dir/sched/test_easy.cpp.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/test_easy.cpp.o.d"
  "/root/repo/tests/sched/test_fcfs.cpp" "tests/CMakeFiles/test_sched.dir/sched/test_fcfs.cpp.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/test_fcfs.cpp.o.d"
  "/root/repo/tests/sched/test_moldable.cpp" "tests/CMakeFiles/test_sched.dir/sched/test_moldable.cpp.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/test_moldable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/greenhpc_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/carbon/CMakeFiles/greenhpc_carbon.dir/DependInfo.cmake"
  "/root/repo/build/src/powerstack/CMakeFiles/greenhpc_powerstack.dir/DependInfo.cmake"
  "/root/repo/build/src/hpcsim/CMakeFiles/greenhpc_hpcsim.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/greenhpc_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/greenhpc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
