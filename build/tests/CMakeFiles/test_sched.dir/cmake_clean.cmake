file(REMOVE_RECURSE
  "CMakeFiles/test_sched.dir/sched/test_carbon_aware.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_carbon_aware.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_conservative.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_conservative.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_decorators.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_decorators.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_easy.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_easy.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_fcfs.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_fcfs.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_moldable.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_moldable.cpp.o.d"
  "test_sched"
  "test_sched.pdb"
  "test_sched[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
