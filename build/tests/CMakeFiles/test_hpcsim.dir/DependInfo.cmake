
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hpcsim/test_job.cpp" "tests/CMakeFiles/test_hpcsim.dir/hpcsim/test_job.cpp.o" "gcc" "tests/CMakeFiles/test_hpcsim.dir/hpcsim/test_job.cpp.o.d"
  "/root/repo/tests/hpcsim/test_powersave.cpp" "tests/CMakeFiles/test_hpcsim.dir/hpcsim/test_powersave.cpp.o" "gcc" "tests/CMakeFiles/test_hpcsim.dir/hpcsim/test_powersave.cpp.o.d"
  "/root/repo/tests/hpcsim/test_result.cpp" "tests/CMakeFiles/test_hpcsim.dir/hpcsim/test_result.cpp.o" "gcc" "tests/CMakeFiles/test_hpcsim.dir/hpcsim/test_result.cpp.o.d"
  "/root/repo/tests/hpcsim/test_simulator.cpp" "tests/CMakeFiles/test_hpcsim.dir/hpcsim/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/test_hpcsim.dir/hpcsim/test_simulator.cpp.o.d"
  "/root/repo/tests/hpcsim/test_swf_io.cpp" "tests/CMakeFiles/test_hpcsim.dir/hpcsim/test_swf_io.cpp.o" "gcc" "tests/CMakeFiles/test_hpcsim.dir/hpcsim/test_swf_io.cpp.o.d"
  "/root/repo/tests/hpcsim/test_walltime.cpp" "tests/CMakeFiles/test_hpcsim.dir/hpcsim/test_walltime.cpp.o" "gcc" "tests/CMakeFiles/test_hpcsim.dir/hpcsim/test_walltime.cpp.o.d"
  "/root/repo/tests/hpcsim/test_workload.cpp" "tests/CMakeFiles/test_hpcsim.dir/hpcsim/test_workload.cpp.o" "gcc" "tests/CMakeFiles/test_hpcsim.dir/hpcsim/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hpcsim/CMakeFiles/greenhpc_hpcsim.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/greenhpc_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/greenhpc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
