file(REMOVE_RECURSE
  "CMakeFiles/test_hpcsim.dir/hpcsim/test_job.cpp.o"
  "CMakeFiles/test_hpcsim.dir/hpcsim/test_job.cpp.o.d"
  "CMakeFiles/test_hpcsim.dir/hpcsim/test_powersave.cpp.o"
  "CMakeFiles/test_hpcsim.dir/hpcsim/test_powersave.cpp.o.d"
  "CMakeFiles/test_hpcsim.dir/hpcsim/test_result.cpp.o"
  "CMakeFiles/test_hpcsim.dir/hpcsim/test_result.cpp.o.d"
  "CMakeFiles/test_hpcsim.dir/hpcsim/test_simulator.cpp.o"
  "CMakeFiles/test_hpcsim.dir/hpcsim/test_simulator.cpp.o.d"
  "CMakeFiles/test_hpcsim.dir/hpcsim/test_swf_io.cpp.o"
  "CMakeFiles/test_hpcsim.dir/hpcsim/test_swf_io.cpp.o.d"
  "CMakeFiles/test_hpcsim.dir/hpcsim/test_walltime.cpp.o"
  "CMakeFiles/test_hpcsim.dir/hpcsim/test_walltime.cpp.o.d"
  "CMakeFiles/test_hpcsim.dir/hpcsim/test_workload.cpp.o"
  "CMakeFiles/test_hpcsim.dir/hpcsim/test_workload.cpp.o.d"
  "test_hpcsim"
  "test_hpcsim.pdb"
  "test_hpcsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpcsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
