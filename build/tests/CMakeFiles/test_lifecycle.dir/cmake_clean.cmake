file(REMOVE_RECURSE
  "CMakeFiles/test_lifecycle.dir/lifecycle/test_fleet.cpp.o"
  "CMakeFiles/test_lifecycle.dir/lifecycle/test_fleet.cpp.o.d"
  "CMakeFiles/test_lifecycle.dir/lifecycle/test_fleet_timeline.cpp.o"
  "CMakeFiles/test_lifecycle.dir/lifecycle/test_fleet_timeline.cpp.o.d"
  "CMakeFiles/test_lifecycle.dir/lifecycle/test_reuse.cpp.o"
  "CMakeFiles/test_lifecycle.dir/lifecycle/test_reuse.cpp.o.d"
  "test_lifecycle"
  "test_lifecycle.pdb"
  "test_lifecycle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
