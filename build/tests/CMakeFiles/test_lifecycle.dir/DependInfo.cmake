
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lifecycle/test_fleet.cpp" "tests/CMakeFiles/test_lifecycle.dir/lifecycle/test_fleet.cpp.o" "gcc" "tests/CMakeFiles/test_lifecycle.dir/lifecycle/test_fleet.cpp.o.d"
  "/root/repo/tests/lifecycle/test_fleet_timeline.cpp" "tests/CMakeFiles/test_lifecycle.dir/lifecycle/test_fleet_timeline.cpp.o" "gcc" "tests/CMakeFiles/test_lifecycle.dir/lifecycle/test_fleet_timeline.cpp.o.d"
  "/root/repo/tests/lifecycle/test_reuse.cpp" "tests/CMakeFiles/test_lifecycle.dir/lifecycle/test_reuse.cpp.o" "gcc" "tests/CMakeFiles/test_lifecycle.dir/lifecycle/test_reuse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lifecycle/CMakeFiles/greenhpc_lifecycle.dir/DependInfo.cmake"
  "/root/repo/build/src/embodied/CMakeFiles/greenhpc_embodied.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/greenhpc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
