# Empty dependencies file for test_embodied.
# This may be replaced when dependencies are built.
