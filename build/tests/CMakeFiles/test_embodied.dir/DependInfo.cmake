
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/embodied/test_act_model.cpp" "tests/CMakeFiles/test_embodied.dir/embodied/test_act_model.cpp.o" "gcc" "tests/CMakeFiles/test_embodied.dir/embodied/test_act_model.cpp.o.d"
  "/root/repo/tests/embodied/test_components.cpp" "tests/CMakeFiles/test_embodied.dir/embodied/test_components.cpp.o" "gcc" "tests/CMakeFiles/test_embodied.dir/embodied/test_components.cpp.o.d"
  "/root/repo/tests/embodied/test_dse.cpp" "tests/CMakeFiles/test_embodied.dir/embodied/test_dse.cpp.o" "gcc" "tests/CMakeFiles/test_embodied.dir/embodied/test_dse.cpp.o.d"
  "/root/repo/tests/embodied/test_interconnect.cpp" "tests/CMakeFiles/test_embodied.dir/embodied/test_interconnect.cpp.o" "gcc" "tests/CMakeFiles/test_embodied.dir/embodied/test_interconnect.cpp.o.d"
  "/root/repo/tests/embodied/test_metrics.cpp" "tests/CMakeFiles/test_embodied.dir/embodied/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/test_embodied.dir/embodied/test_metrics.cpp.o.d"
  "/root/repo/tests/embodied/test_systems.cpp" "tests/CMakeFiles/test_embodied.dir/embodied/test_systems.cpp.o" "gcc" "tests/CMakeFiles/test_embodied.dir/embodied/test_systems.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/embodied/CMakeFiles/greenhpc_embodied.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/greenhpc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
