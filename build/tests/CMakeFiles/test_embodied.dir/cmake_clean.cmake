file(REMOVE_RECURSE
  "CMakeFiles/test_embodied.dir/embodied/test_act_model.cpp.o"
  "CMakeFiles/test_embodied.dir/embodied/test_act_model.cpp.o.d"
  "CMakeFiles/test_embodied.dir/embodied/test_components.cpp.o"
  "CMakeFiles/test_embodied.dir/embodied/test_components.cpp.o.d"
  "CMakeFiles/test_embodied.dir/embodied/test_dse.cpp.o"
  "CMakeFiles/test_embodied.dir/embodied/test_dse.cpp.o.d"
  "CMakeFiles/test_embodied.dir/embodied/test_interconnect.cpp.o"
  "CMakeFiles/test_embodied.dir/embodied/test_interconnect.cpp.o.d"
  "CMakeFiles/test_embodied.dir/embodied/test_metrics.cpp.o"
  "CMakeFiles/test_embodied.dir/embodied/test_metrics.cpp.o.d"
  "CMakeFiles/test_embodied.dir/embodied/test_systems.cpp.o"
  "CMakeFiles/test_embodied.dir/embodied/test_systems.cpp.o.d"
  "test_embodied"
  "test_embodied.pdb"
  "test_embodied[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_embodied.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
