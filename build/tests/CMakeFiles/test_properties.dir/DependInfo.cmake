
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/properties/test_property_embodied.cpp" "tests/CMakeFiles/test_properties.dir/properties/test_property_embodied.cpp.o" "gcc" "tests/CMakeFiles/test_properties.dir/properties/test_property_embodied.cpp.o.d"
  "/root/repo/tests/properties/test_property_facility.cpp" "tests/CMakeFiles/test_properties.dir/properties/test_property_facility.cpp.o" "gcc" "tests/CMakeFiles/test_properties.dir/properties/test_property_facility.cpp.o.d"
  "/root/repo/tests/properties/test_property_grid.cpp" "tests/CMakeFiles/test_properties.dir/properties/test_property_grid.cpp.o" "gcc" "tests/CMakeFiles/test_properties.dir/properties/test_property_grid.cpp.o.d"
  "/root/repo/tests/properties/test_property_optimizer.cpp" "tests/CMakeFiles/test_properties.dir/properties/test_property_optimizer.cpp.o" "gcc" "tests/CMakeFiles/test_properties.dir/properties/test_property_optimizer.cpp.o.d"
  "/root/repo/tests/properties/test_property_sched.cpp" "tests/CMakeFiles/test_properties.dir/properties/test_property_sched.cpp.o" "gcc" "tests/CMakeFiles/test_properties.dir/properties/test_property_sched.cpp.o.d"
  "/root/repo/tests/properties/test_property_simulator.cpp" "tests/CMakeFiles/test_properties.dir/properties/test_property_simulator.cpp.o" "gcc" "tests/CMakeFiles/test_properties.dir/properties/test_property_simulator.cpp.o.d"
  "/root/repo/tests/properties/test_property_waterfill.cpp" "tests/CMakeFiles/test_properties.dir/properties/test_property_waterfill.cpp.o" "gcc" "tests/CMakeFiles/test_properties.dir/properties/test_property_waterfill.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/greenhpc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/powerstack/CMakeFiles/greenhpc_powerstack.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/greenhpc_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/lifecycle/CMakeFiles/greenhpc_lifecycle.dir/DependInfo.cmake"
  "/root/repo/build/src/accounting/CMakeFiles/greenhpc_accounting.dir/DependInfo.cmake"
  "/root/repo/build/src/hpcsim/CMakeFiles/greenhpc_hpcsim.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/greenhpc_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/procure/CMakeFiles/greenhpc_procure.dir/DependInfo.cmake"
  "/root/repo/build/src/embodied/CMakeFiles/greenhpc_embodied.dir/DependInfo.cmake"
  "/root/repo/build/src/facility/CMakeFiles/greenhpc_facility.dir/DependInfo.cmake"
  "/root/repo/build/src/carbon/CMakeFiles/greenhpc_carbon.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/greenhpc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
