file(REMOVE_RECURSE
  "CMakeFiles/test_properties.dir/properties/test_property_embodied.cpp.o"
  "CMakeFiles/test_properties.dir/properties/test_property_embodied.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/test_property_facility.cpp.o"
  "CMakeFiles/test_properties.dir/properties/test_property_facility.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/test_property_grid.cpp.o"
  "CMakeFiles/test_properties.dir/properties/test_property_grid.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/test_property_optimizer.cpp.o"
  "CMakeFiles/test_properties.dir/properties/test_property_optimizer.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/test_property_sched.cpp.o"
  "CMakeFiles/test_properties.dir/properties/test_property_sched.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/test_property_simulator.cpp.o"
  "CMakeFiles/test_properties.dir/properties/test_property_simulator.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/test_property_waterfill.cpp.o"
  "CMakeFiles/test_properties.dir/properties/test_property_waterfill.cpp.o.d"
  "test_properties"
  "test_properties.pdb"
  "test_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
