# Empty compiler generated dependencies file for greenhpc_carbon.
# This may be replaced when dependencies are built.
