file(REMOVE_RECURSE
  "CMakeFiles/greenhpc_carbon.dir/forecast.cpp.o"
  "CMakeFiles/greenhpc_carbon.dir/forecast.cpp.o.d"
  "CMakeFiles/greenhpc_carbon.dir/green_periods.cpp.o"
  "CMakeFiles/greenhpc_carbon.dir/green_periods.cpp.o.d"
  "CMakeFiles/greenhpc_carbon.dir/grid_model.cpp.o"
  "CMakeFiles/greenhpc_carbon.dir/grid_model.cpp.o.d"
  "CMakeFiles/greenhpc_carbon.dir/region.cpp.o"
  "CMakeFiles/greenhpc_carbon.dir/region.cpp.o.d"
  "CMakeFiles/greenhpc_carbon.dir/trace_io.cpp.o"
  "CMakeFiles/greenhpc_carbon.dir/trace_io.cpp.o.d"
  "libgreenhpc_carbon.a"
  "libgreenhpc_carbon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greenhpc_carbon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
