file(REMOVE_RECURSE
  "libgreenhpc_carbon.a"
)
