
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/carbon/forecast.cpp" "src/carbon/CMakeFiles/greenhpc_carbon.dir/forecast.cpp.o" "gcc" "src/carbon/CMakeFiles/greenhpc_carbon.dir/forecast.cpp.o.d"
  "/root/repo/src/carbon/green_periods.cpp" "src/carbon/CMakeFiles/greenhpc_carbon.dir/green_periods.cpp.o" "gcc" "src/carbon/CMakeFiles/greenhpc_carbon.dir/green_periods.cpp.o.d"
  "/root/repo/src/carbon/grid_model.cpp" "src/carbon/CMakeFiles/greenhpc_carbon.dir/grid_model.cpp.o" "gcc" "src/carbon/CMakeFiles/greenhpc_carbon.dir/grid_model.cpp.o.d"
  "/root/repo/src/carbon/region.cpp" "src/carbon/CMakeFiles/greenhpc_carbon.dir/region.cpp.o" "gcc" "src/carbon/CMakeFiles/greenhpc_carbon.dir/region.cpp.o.d"
  "/root/repo/src/carbon/trace_io.cpp" "src/carbon/CMakeFiles/greenhpc_carbon.dir/trace_io.cpp.o" "gcc" "src/carbon/CMakeFiles/greenhpc_carbon.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/greenhpc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
