file(REMOVE_RECURSE
  "libgreenhpc_embodied.a"
)
