
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/embodied/act_model.cpp" "src/embodied/CMakeFiles/greenhpc_embodied.dir/act_model.cpp.o" "gcc" "src/embodied/CMakeFiles/greenhpc_embodied.dir/act_model.cpp.o.d"
  "/root/repo/src/embodied/components.cpp" "src/embodied/CMakeFiles/greenhpc_embodied.dir/components.cpp.o" "gcc" "src/embodied/CMakeFiles/greenhpc_embodied.dir/components.cpp.o.d"
  "/root/repo/src/embodied/dse.cpp" "src/embodied/CMakeFiles/greenhpc_embodied.dir/dse.cpp.o" "gcc" "src/embodied/CMakeFiles/greenhpc_embodied.dir/dse.cpp.o.d"
  "/root/repo/src/embodied/interconnect.cpp" "src/embodied/CMakeFiles/greenhpc_embodied.dir/interconnect.cpp.o" "gcc" "src/embodied/CMakeFiles/greenhpc_embodied.dir/interconnect.cpp.o.d"
  "/root/repo/src/embodied/metrics.cpp" "src/embodied/CMakeFiles/greenhpc_embodied.dir/metrics.cpp.o" "gcc" "src/embodied/CMakeFiles/greenhpc_embodied.dir/metrics.cpp.o.d"
  "/root/repo/src/embodied/systems.cpp" "src/embodied/CMakeFiles/greenhpc_embodied.dir/systems.cpp.o" "gcc" "src/embodied/CMakeFiles/greenhpc_embodied.dir/systems.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/greenhpc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
