file(REMOVE_RECURSE
  "CMakeFiles/greenhpc_embodied.dir/act_model.cpp.o"
  "CMakeFiles/greenhpc_embodied.dir/act_model.cpp.o.d"
  "CMakeFiles/greenhpc_embodied.dir/components.cpp.o"
  "CMakeFiles/greenhpc_embodied.dir/components.cpp.o.d"
  "CMakeFiles/greenhpc_embodied.dir/dse.cpp.o"
  "CMakeFiles/greenhpc_embodied.dir/dse.cpp.o.d"
  "CMakeFiles/greenhpc_embodied.dir/interconnect.cpp.o"
  "CMakeFiles/greenhpc_embodied.dir/interconnect.cpp.o.d"
  "CMakeFiles/greenhpc_embodied.dir/metrics.cpp.o"
  "CMakeFiles/greenhpc_embodied.dir/metrics.cpp.o.d"
  "CMakeFiles/greenhpc_embodied.dir/systems.cpp.o"
  "CMakeFiles/greenhpc_embodied.dir/systems.cpp.o.d"
  "libgreenhpc_embodied.a"
  "libgreenhpc_embodied.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greenhpc_embodied.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
