# Empty dependencies file for greenhpc_embodied.
# This may be replaced when dependencies are built.
