
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hpcsim/job.cpp" "src/hpcsim/CMakeFiles/greenhpc_hpcsim.dir/job.cpp.o" "gcc" "src/hpcsim/CMakeFiles/greenhpc_hpcsim.dir/job.cpp.o.d"
  "/root/repo/src/hpcsim/result.cpp" "src/hpcsim/CMakeFiles/greenhpc_hpcsim.dir/result.cpp.o" "gcc" "src/hpcsim/CMakeFiles/greenhpc_hpcsim.dir/result.cpp.o.d"
  "/root/repo/src/hpcsim/simulator.cpp" "src/hpcsim/CMakeFiles/greenhpc_hpcsim.dir/simulator.cpp.o" "gcc" "src/hpcsim/CMakeFiles/greenhpc_hpcsim.dir/simulator.cpp.o.d"
  "/root/repo/src/hpcsim/swf_io.cpp" "src/hpcsim/CMakeFiles/greenhpc_hpcsim.dir/swf_io.cpp.o" "gcc" "src/hpcsim/CMakeFiles/greenhpc_hpcsim.dir/swf_io.cpp.o.d"
  "/root/repo/src/hpcsim/workload.cpp" "src/hpcsim/CMakeFiles/greenhpc_hpcsim.dir/workload.cpp.o" "gcc" "src/hpcsim/CMakeFiles/greenhpc_hpcsim.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/greenhpc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/greenhpc_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
