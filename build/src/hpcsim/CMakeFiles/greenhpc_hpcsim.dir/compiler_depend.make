# Empty compiler generated dependencies file for greenhpc_hpcsim.
# This may be replaced when dependencies are built.
