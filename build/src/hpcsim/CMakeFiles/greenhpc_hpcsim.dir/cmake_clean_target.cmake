file(REMOVE_RECURSE
  "libgreenhpc_hpcsim.a"
)
