file(REMOVE_RECURSE
  "CMakeFiles/greenhpc_hpcsim.dir/job.cpp.o"
  "CMakeFiles/greenhpc_hpcsim.dir/job.cpp.o.d"
  "CMakeFiles/greenhpc_hpcsim.dir/result.cpp.o"
  "CMakeFiles/greenhpc_hpcsim.dir/result.cpp.o.d"
  "CMakeFiles/greenhpc_hpcsim.dir/simulator.cpp.o"
  "CMakeFiles/greenhpc_hpcsim.dir/simulator.cpp.o.d"
  "CMakeFiles/greenhpc_hpcsim.dir/swf_io.cpp.o"
  "CMakeFiles/greenhpc_hpcsim.dir/swf_io.cpp.o.d"
  "CMakeFiles/greenhpc_hpcsim.dir/workload.cpp.o"
  "CMakeFiles/greenhpc_hpcsim.dir/workload.cpp.o.d"
  "libgreenhpc_hpcsim.a"
  "libgreenhpc_hpcsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greenhpc_hpcsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
