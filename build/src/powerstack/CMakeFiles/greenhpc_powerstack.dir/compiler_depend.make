# Empty compiler generated dependencies file for greenhpc_powerstack.
# This may be replaced when dependencies are built.
