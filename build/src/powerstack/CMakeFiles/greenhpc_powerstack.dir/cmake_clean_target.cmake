file(REMOVE_RECURSE
  "libgreenhpc_powerstack.a"
)
