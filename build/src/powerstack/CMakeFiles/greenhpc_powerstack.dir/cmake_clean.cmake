file(REMOVE_RECURSE
  "CMakeFiles/greenhpc_powerstack.dir/budget_tree.cpp.o"
  "CMakeFiles/greenhpc_powerstack.dir/budget_tree.cpp.o.d"
  "CMakeFiles/greenhpc_powerstack.dir/policies.cpp.o"
  "CMakeFiles/greenhpc_powerstack.dir/policies.cpp.o.d"
  "libgreenhpc_powerstack.a"
  "libgreenhpc_powerstack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greenhpc_powerstack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
