file(REMOVE_RECURSE
  "libgreenhpc_procure.a"
)
