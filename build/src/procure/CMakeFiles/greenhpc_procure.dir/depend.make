# Empty dependencies file for greenhpc_procure.
# This may be replaced when dependencies are built.
