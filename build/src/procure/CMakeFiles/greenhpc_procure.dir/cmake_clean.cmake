file(REMOVE_RECURSE
  "CMakeFiles/greenhpc_procure.dir/carbon500.cpp.o"
  "CMakeFiles/greenhpc_procure.dir/carbon500.cpp.o.d"
  "CMakeFiles/greenhpc_procure.dir/catalog.cpp.o"
  "CMakeFiles/greenhpc_procure.dir/catalog.cpp.o.d"
  "CMakeFiles/greenhpc_procure.dir/optimizer.cpp.o"
  "CMakeFiles/greenhpc_procure.dir/optimizer.cpp.o.d"
  "CMakeFiles/greenhpc_procure.dir/tradeoff.cpp.o"
  "CMakeFiles/greenhpc_procure.dir/tradeoff.cpp.o.d"
  "libgreenhpc_procure.a"
  "libgreenhpc_procure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greenhpc_procure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
