
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/procure/carbon500.cpp" "src/procure/CMakeFiles/greenhpc_procure.dir/carbon500.cpp.o" "gcc" "src/procure/CMakeFiles/greenhpc_procure.dir/carbon500.cpp.o.d"
  "/root/repo/src/procure/catalog.cpp" "src/procure/CMakeFiles/greenhpc_procure.dir/catalog.cpp.o" "gcc" "src/procure/CMakeFiles/greenhpc_procure.dir/catalog.cpp.o.d"
  "/root/repo/src/procure/optimizer.cpp" "src/procure/CMakeFiles/greenhpc_procure.dir/optimizer.cpp.o" "gcc" "src/procure/CMakeFiles/greenhpc_procure.dir/optimizer.cpp.o.d"
  "/root/repo/src/procure/tradeoff.cpp" "src/procure/CMakeFiles/greenhpc_procure.dir/tradeoff.cpp.o" "gcc" "src/procure/CMakeFiles/greenhpc_procure.dir/tradeoff.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/greenhpc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/embodied/CMakeFiles/greenhpc_embodied.dir/DependInfo.cmake"
  "/root/repo/build/src/carbon/CMakeFiles/greenhpc_carbon.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
