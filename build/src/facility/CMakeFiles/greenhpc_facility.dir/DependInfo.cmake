
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/facility/cooling.cpp" "src/facility/CMakeFiles/greenhpc_facility.dir/cooling.cpp.o" "gcc" "src/facility/CMakeFiles/greenhpc_facility.dir/cooling.cpp.o.d"
  "/root/repo/src/facility/facility_model.cpp" "src/facility/CMakeFiles/greenhpc_facility.dir/facility_model.cpp.o" "gcc" "src/facility/CMakeFiles/greenhpc_facility.dir/facility_model.cpp.o.d"
  "/root/repo/src/facility/heat_reuse.cpp" "src/facility/CMakeFiles/greenhpc_facility.dir/heat_reuse.cpp.o" "gcc" "src/facility/CMakeFiles/greenhpc_facility.dir/heat_reuse.cpp.o.d"
  "/root/repo/src/facility/weather.cpp" "src/facility/CMakeFiles/greenhpc_facility.dir/weather.cpp.o" "gcc" "src/facility/CMakeFiles/greenhpc_facility.dir/weather.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/greenhpc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/carbon/CMakeFiles/greenhpc_carbon.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
