file(REMOVE_RECURSE
  "CMakeFiles/greenhpc_facility.dir/cooling.cpp.o"
  "CMakeFiles/greenhpc_facility.dir/cooling.cpp.o.d"
  "CMakeFiles/greenhpc_facility.dir/facility_model.cpp.o"
  "CMakeFiles/greenhpc_facility.dir/facility_model.cpp.o.d"
  "CMakeFiles/greenhpc_facility.dir/heat_reuse.cpp.o"
  "CMakeFiles/greenhpc_facility.dir/heat_reuse.cpp.o.d"
  "CMakeFiles/greenhpc_facility.dir/weather.cpp.o"
  "CMakeFiles/greenhpc_facility.dir/weather.cpp.o.d"
  "libgreenhpc_facility.a"
  "libgreenhpc_facility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greenhpc_facility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
