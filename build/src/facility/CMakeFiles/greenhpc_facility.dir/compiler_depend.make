# Empty compiler generated dependencies file for greenhpc_facility.
# This may be replaced when dependencies are built.
