file(REMOVE_RECURSE
  "libgreenhpc_facility.a"
)
