# Empty compiler generated dependencies file for greenhpc_util.
# This may be replaced when dependencies are built.
