file(REMOVE_RECURSE
  "CMakeFiles/greenhpc_util.dir/csv.cpp.o"
  "CMakeFiles/greenhpc_util.dir/csv.cpp.o.d"
  "CMakeFiles/greenhpc_util.dir/parallel.cpp.o"
  "CMakeFiles/greenhpc_util.dir/parallel.cpp.o.d"
  "CMakeFiles/greenhpc_util.dir/rng.cpp.o"
  "CMakeFiles/greenhpc_util.dir/rng.cpp.o.d"
  "CMakeFiles/greenhpc_util.dir/stats.cpp.o"
  "CMakeFiles/greenhpc_util.dir/stats.cpp.o.d"
  "CMakeFiles/greenhpc_util.dir/table.cpp.o"
  "CMakeFiles/greenhpc_util.dir/table.cpp.o.d"
  "CMakeFiles/greenhpc_util.dir/time_series.cpp.o"
  "CMakeFiles/greenhpc_util.dir/time_series.cpp.o.d"
  "libgreenhpc_util.a"
  "libgreenhpc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greenhpc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
