file(REMOVE_RECURSE
  "libgreenhpc_util.a"
)
