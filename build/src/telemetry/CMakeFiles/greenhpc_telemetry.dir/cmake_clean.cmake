file(REMOVE_RECURSE
  "CMakeFiles/greenhpc_telemetry.dir/sensor_store.cpp.o"
  "CMakeFiles/greenhpc_telemetry.dir/sensor_store.cpp.o.d"
  "libgreenhpc_telemetry.a"
  "libgreenhpc_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greenhpc_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
