file(REMOVE_RECURSE
  "libgreenhpc_telemetry.a"
)
