# Empty compiler generated dependencies file for greenhpc_telemetry.
# This may be replaced when dependencies are built.
