file(REMOVE_RECURSE
  "libgreenhpc_lifecycle.a"
)
