
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lifecycle/fleet.cpp" "src/lifecycle/CMakeFiles/greenhpc_lifecycle.dir/fleet.cpp.o" "gcc" "src/lifecycle/CMakeFiles/greenhpc_lifecycle.dir/fleet.cpp.o.d"
  "/root/repo/src/lifecycle/reuse.cpp" "src/lifecycle/CMakeFiles/greenhpc_lifecycle.dir/reuse.cpp.o" "gcc" "src/lifecycle/CMakeFiles/greenhpc_lifecycle.dir/reuse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/greenhpc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/embodied/CMakeFiles/greenhpc_embodied.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
