# Empty dependencies file for greenhpc_lifecycle.
# This may be replaced when dependencies are built.
