file(REMOVE_RECURSE
  "CMakeFiles/greenhpc_lifecycle.dir/fleet.cpp.o"
  "CMakeFiles/greenhpc_lifecycle.dir/fleet.cpp.o.d"
  "CMakeFiles/greenhpc_lifecycle.dir/reuse.cpp.o"
  "CMakeFiles/greenhpc_lifecycle.dir/reuse.cpp.o.d"
  "libgreenhpc_lifecycle.a"
  "libgreenhpc_lifecycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greenhpc_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
