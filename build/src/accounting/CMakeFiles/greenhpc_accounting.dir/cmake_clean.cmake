file(REMOVE_RECURSE
  "CMakeFiles/greenhpc_accounting.dir/incentives.cpp.o"
  "CMakeFiles/greenhpc_accounting.dir/incentives.cpp.o.d"
  "CMakeFiles/greenhpc_accounting.dir/job_carbon.cpp.o"
  "CMakeFiles/greenhpc_accounting.dir/job_carbon.cpp.o.d"
  "CMakeFiles/greenhpc_accounting.dir/ledger.cpp.o"
  "CMakeFiles/greenhpc_accounting.dir/ledger.cpp.o.d"
  "libgreenhpc_accounting.a"
  "libgreenhpc_accounting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greenhpc_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
