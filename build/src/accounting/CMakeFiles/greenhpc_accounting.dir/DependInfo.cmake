
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accounting/incentives.cpp" "src/accounting/CMakeFiles/greenhpc_accounting.dir/incentives.cpp.o" "gcc" "src/accounting/CMakeFiles/greenhpc_accounting.dir/incentives.cpp.o.d"
  "/root/repo/src/accounting/job_carbon.cpp" "src/accounting/CMakeFiles/greenhpc_accounting.dir/job_carbon.cpp.o" "gcc" "src/accounting/CMakeFiles/greenhpc_accounting.dir/job_carbon.cpp.o.d"
  "/root/repo/src/accounting/ledger.cpp" "src/accounting/CMakeFiles/greenhpc_accounting.dir/ledger.cpp.o" "gcc" "src/accounting/CMakeFiles/greenhpc_accounting.dir/ledger.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/greenhpc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hpcsim/CMakeFiles/greenhpc_hpcsim.dir/DependInfo.cmake"
  "/root/repo/build/src/carbon/CMakeFiles/greenhpc_carbon.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/greenhpc_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
