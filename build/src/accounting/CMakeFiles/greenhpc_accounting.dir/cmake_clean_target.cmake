file(REMOVE_RECURSE
  "libgreenhpc_accounting.a"
)
