# Empty compiler generated dependencies file for greenhpc_accounting.
# This may be replaced when dependencies are built.
