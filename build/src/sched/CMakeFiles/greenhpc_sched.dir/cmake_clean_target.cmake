file(REMOVE_RECURSE
  "libgreenhpc_sched.a"
)
