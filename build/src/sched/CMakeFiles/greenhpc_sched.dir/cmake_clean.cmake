file(REMOVE_RECURSE
  "CMakeFiles/greenhpc_sched.dir/carbon_aware.cpp.o"
  "CMakeFiles/greenhpc_sched.dir/carbon_aware.cpp.o.d"
  "CMakeFiles/greenhpc_sched.dir/conservative.cpp.o"
  "CMakeFiles/greenhpc_sched.dir/conservative.cpp.o.d"
  "CMakeFiles/greenhpc_sched.dir/decorators.cpp.o"
  "CMakeFiles/greenhpc_sched.dir/decorators.cpp.o.d"
  "CMakeFiles/greenhpc_sched.dir/easy_backfill.cpp.o"
  "CMakeFiles/greenhpc_sched.dir/easy_backfill.cpp.o.d"
  "CMakeFiles/greenhpc_sched.dir/fcfs.cpp.o"
  "CMakeFiles/greenhpc_sched.dir/fcfs.cpp.o.d"
  "libgreenhpc_sched.a"
  "libgreenhpc_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greenhpc_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
