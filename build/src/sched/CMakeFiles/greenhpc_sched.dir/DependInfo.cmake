
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/carbon_aware.cpp" "src/sched/CMakeFiles/greenhpc_sched.dir/carbon_aware.cpp.o" "gcc" "src/sched/CMakeFiles/greenhpc_sched.dir/carbon_aware.cpp.o.d"
  "/root/repo/src/sched/conservative.cpp" "src/sched/CMakeFiles/greenhpc_sched.dir/conservative.cpp.o" "gcc" "src/sched/CMakeFiles/greenhpc_sched.dir/conservative.cpp.o.d"
  "/root/repo/src/sched/decorators.cpp" "src/sched/CMakeFiles/greenhpc_sched.dir/decorators.cpp.o" "gcc" "src/sched/CMakeFiles/greenhpc_sched.dir/decorators.cpp.o.d"
  "/root/repo/src/sched/easy_backfill.cpp" "src/sched/CMakeFiles/greenhpc_sched.dir/easy_backfill.cpp.o" "gcc" "src/sched/CMakeFiles/greenhpc_sched.dir/easy_backfill.cpp.o.d"
  "/root/repo/src/sched/fcfs.cpp" "src/sched/CMakeFiles/greenhpc_sched.dir/fcfs.cpp.o" "gcc" "src/sched/CMakeFiles/greenhpc_sched.dir/fcfs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hpcsim/CMakeFiles/greenhpc_hpcsim.dir/DependInfo.cmake"
  "/root/repo/build/src/carbon/CMakeFiles/greenhpc_carbon.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/greenhpc_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/greenhpc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
