# Empty dependencies file for greenhpc_sched.
# This may be replaced when dependencies are built.
