file(REMOVE_RECURSE
  "libgreenhpc_core.a"
)
