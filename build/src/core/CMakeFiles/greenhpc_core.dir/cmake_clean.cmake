file(REMOVE_RECURSE
  "CMakeFiles/greenhpc_core.dir/federation.cpp.o"
  "CMakeFiles/greenhpc_core.dir/federation.cpp.o.d"
  "CMakeFiles/greenhpc_core.dir/scenario.cpp.o"
  "CMakeFiles/greenhpc_core.dir/scenario.cpp.o.d"
  "CMakeFiles/greenhpc_core.dir/site_model.cpp.o"
  "CMakeFiles/greenhpc_core.dir/site_model.cpp.o.d"
  "libgreenhpc_core.a"
  "libgreenhpc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greenhpc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
