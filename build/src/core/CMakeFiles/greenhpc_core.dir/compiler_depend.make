# Empty compiler generated dependencies file for greenhpc_core.
# This may be replaced when dependencies are built.
