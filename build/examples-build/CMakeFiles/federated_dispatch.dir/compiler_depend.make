# Empty compiler generated dependencies file for federated_dispatch.
# This may be replaced when dependencies are built.
