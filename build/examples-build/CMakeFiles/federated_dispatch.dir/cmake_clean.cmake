file(REMOVE_RECURSE
  "../examples/federated_dispatch"
  "../examples/federated_dispatch.pdb"
  "CMakeFiles/federated_dispatch.dir/federated_dispatch.cpp.o"
  "CMakeFiles/federated_dispatch.dir/federated_dispatch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
