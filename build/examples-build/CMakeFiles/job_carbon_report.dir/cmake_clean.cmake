file(REMOVE_RECURSE
  "../examples/job_carbon_report"
  "../examples/job_carbon_report.pdb"
  "CMakeFiles/job_carbon_report.dir/job_carbon_report.cpp.o"
  "CMakeFiles/job_carbon_report.dir/job_carbon_report.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/job_carbon_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
