# Empty compiler generated dependencies file for job_carbon_report.
# This may be replaced when dependencies are built.
