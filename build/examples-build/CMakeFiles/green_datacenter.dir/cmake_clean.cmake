file(REMOVE_RECURSE
  "../examples/green_datacenter"
  "../examples/green_datacenter.pdb"
  "CMakeFiles/green_datacenter.dir/green_datacenter.cpp.o"
  "CMakeFiles/green_datacenter.dir/green_datacenter.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/green_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
