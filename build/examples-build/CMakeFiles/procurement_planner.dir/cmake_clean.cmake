file(REMOVE_RECURSE
  "../examples/procurement_planner"
  "../examples/procurement_planner.pdb"
  "CMakeFiles/procurement_planner.dir/procurement_planner.cpp.o"
  "CMakeFiles/procurement_planner.dir/procurement_planner.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procurement_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
