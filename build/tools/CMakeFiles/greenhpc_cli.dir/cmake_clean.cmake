file(REMOVE_RECURSE
  "CMakeFiles/greenhpc_cli.dir/greenhpc_cli.cpp.o"
  "CMakeFiles/greenhpc_cli.dir/greenhpc_cli.cpp.o.d"
  "greenhpc"
  "greenhpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greenhpc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
