# Empty compiler generated dependencies file for greenhpc_cli.
# This may be replaced when dependencies are built.
