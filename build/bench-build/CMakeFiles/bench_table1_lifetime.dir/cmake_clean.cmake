file(REMOVE_RECURSE
  "../bench/bench_table1_lifetime"
  "../bench/bench_table1_lifetime.pdb"
  "CMakeFiles/bench_table1_lifetime.dir/bench_table1_lifetime.cpp.o"
  "CMakeFiles/bench_table1_lifetime.dir/bench_table1_lifetime.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
