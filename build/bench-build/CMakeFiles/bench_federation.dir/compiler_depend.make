# Empty compiler generated dependencies file for bench_federation.
# This may be replaced when dependencies are built.
