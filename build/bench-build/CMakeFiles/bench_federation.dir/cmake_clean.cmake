file(REMOVE_RECURSE
  "../bench/bench_federation"
  "../bench/bench_federation.pdb"
  "CMakeFiles/bench_federation.dir/bench_federation.cpp.o"
  "CMakeFiles/bench_federation.dir/bench_federation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
