file(REMOVE_RECURSE
  "../bench/bench_carbon_sched"
  "../bench/bench_carbon_sched.pdb"
  "CMakeFiles/bench_carbon_sched.dir/bench_carbon_sched.cpp.o"
  "CMakeFiles/bench_carbon_sched.dir/bench_carbon_sched.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_carbon_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
