# Empty compiler generated dependencies file for bench_carbon_sched.
# This may be replaced when dependencies are built.
