file(REMOVE_RECURSE
  "../bench/bench_fig2_intensity"
  "../bench/bench_fig2_intensity.pdb"
  "CMakeFiles/bench_fig2_intensity.dir/bench_fig2_intensity.cpp.o"
  "CMakeFiles/bench_fig2_intensity.dir/bench_fig2_intensity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_intensity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
