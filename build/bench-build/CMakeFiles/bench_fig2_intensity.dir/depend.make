# Empty dependencies file for bench_fig2_intensity.
# This may be replaced when dependencies are built.
