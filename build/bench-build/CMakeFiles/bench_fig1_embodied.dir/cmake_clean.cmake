file(REMOVE_RECURSE
  "../bench/bench_fig1_embodied"
  "../bench/bench_fig1_embodied.pdb"
  "CMakeFiles/bench_fig1_embodied.dir/bench_fig1_embodied.cpp.o"
  "CMakeFiles/bench_fig1_embodied.dir/bench_fig1_embodied.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_embodied.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
