file(REMOVE_RECURSE
  "../bench/bench_cdp_cep_dse"
  "../bench/bench_cdp_cep_dse.pdb"
  "CMakeFiles/bench_cdp_cep_dse.dir/bench_cdp_cep_dse.cpp.o"
  "CMakeFiles/bench_cdp_cep_dse.dir/bench_cdp_cep_dse.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cdp_cep_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
