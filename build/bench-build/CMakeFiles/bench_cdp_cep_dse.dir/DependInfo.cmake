
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_cdp_cep_dse.cpp" "bench-build/CMakeFiles/bench_cdp_cep_dse.dir/bench_cdp_cep_dse.cpp.o" "gcc" "bench-build/CMakeFiles/bench_cdp_cep_dse.dir/bench_cdp_cep_dse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/greenhpc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/powerstack/CMakeFiles/greenhpc_powerstack.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/greenhpc_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/lifecycle/CMakeFiles/greenhpc_lifecycle.dir/DependInfo.cmake"
  "/root/repo/build/src/accounting/CMakeFiles/greenhpc_accounting.dir/DependInfo.cmake"
  "/root/repo/build/src/hpcsim/CMakeFiles/greenhpc_hpcsim.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/greenhpc_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/procure/CMakeFiles/greenhpc_procure.dir/DependInfo.cmake"
  "/root/repo/build/src/embodied/CMakeFiles/greenhpc_embodied.dir/DependInfo.cmake"
  "/root/repo/build/src/facility/CMakeFiles/greenhpc_facility.dir/DependInfo.cmake"
  "/root/repo/build/src/carbon/CMakeFiles/greenhpc_carbon.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/greenhpc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
