# Empty dependencies file for bench_cdp_cep_dse.
# This may be replaced when dependencies are built.
