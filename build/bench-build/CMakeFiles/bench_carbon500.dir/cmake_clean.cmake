file(REMOVE_RECURSE
  "../bench/bench_carbon500"
  "../bench/bench_carbon500.pdb"
  "CMakeFiles/bench_carbon500.dir/bench_carbon500.cpp.o"
  "CMakeFiles/bench_carbon500.dir/bench_carbon500.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_carbon500.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
