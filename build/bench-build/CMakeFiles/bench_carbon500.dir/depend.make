# Empty dependencies file for bench_carbon500.
# This may be replaced when dependencies are built.
