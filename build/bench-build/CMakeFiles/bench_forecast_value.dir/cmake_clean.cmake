file(REMOVE_RECURSE
  "../bench/bench_forecast_value"
  "../bench/bench_forecast_value.pdb"
  "CMakeFiles/bench_forecast_value.dir/bench_forecast_value.cpp.o"
  "CMakeFiles/bench_forecast_value.dir/bench_forecast_value.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_forecast_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
