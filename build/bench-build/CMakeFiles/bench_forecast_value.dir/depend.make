# Empty dependencies file for bench_forecast_value.
# This may be replaced when dependencies are built.
