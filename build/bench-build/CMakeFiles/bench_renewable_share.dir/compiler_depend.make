# Empty compiler generated dependencies file for bench_renewable_share.
# This may be replaced when dependencies are built.
