file(REMOVE_RECURSE
  "../bench/bench_renewable_share"
  "../bench/bench_renewable_share.pdb"
  "CMakeFiles/bench_renewable_share.dir/bench_renewable_share.cpp.o"
  "CMakeFiles/bench_renewable_share.dir/bench_renewable_share.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_renewable_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
