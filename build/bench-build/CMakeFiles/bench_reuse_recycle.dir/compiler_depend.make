# Empty compiler generated dependencies file for bench_reuse_recycle.
# This may be replaced when dependencies are built.
