file(REMOVE_RECURSE
  "../bench/bench_reuse_recycle"
  "../bench/bench_reuse_recycle.pdb"
  "CMakeFiles/bench_reuse_recycle.dir/bench_reuse_recycle.cpp.o"
  "CMakeFiles/bench_reuse_recycle.dir/bench_reuse_recycle.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reuse_recycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
