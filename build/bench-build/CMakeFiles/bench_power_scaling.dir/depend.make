# Empty dependencies file for bench_power_scaling.
# This may be replaced when dependencies are built.
