file(REMOVE_RECURSE
  "../bench/bench_power_scaling"
  "../bench/bench_power_scaling.pdb"
  "CMakeFiles/bench_power_scaling.dir/bench_power_scaling.cpp.o"
  "CMakeFiles/bench_power_scaling.dir/bench_power_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_power_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
