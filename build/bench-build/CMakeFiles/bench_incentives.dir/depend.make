# Empty dependencies file for bench_incentives.
# This may be replaced when dependencies are built.
