file(REMOVE_RECURSE
  "../bench/bench_ablation_elasticity"
  "../bench/bench_ablation_elasticity.pdb"
  "CMakeFiles/bench_ablation_elasticity.dir/bench_ablation_elasticity.cpp.o"
  "CMakeFiles/bench_ablation_elasticity.dir/bench_ablation_elasticity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_elasticity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
