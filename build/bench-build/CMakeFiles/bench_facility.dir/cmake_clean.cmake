file(REMOVE_RECURSE
  "../bench/bench_facility"
  "../bench/bench_facility.pdb"
  "CMakeFiles/bench_facility.dir/bench_facility.cpp.o"
  "CMakeFiles/bench_facility.dir/bench_facility.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_facility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
