# Empty dependencies file for bench_facility.
# This may be replaced when dependencies are built.
