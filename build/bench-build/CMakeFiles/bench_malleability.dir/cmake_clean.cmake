file(REMOVE_RECURSE
  "../bench/bench_malleability"
  "../bench/bench_malleability.pdb"
  "CMakeFiles/bench_malleability.dir/bench_malleability.cpp.o"
  "CMakeFiles/bench_malleability.dir/bench_malleability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_malleability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
