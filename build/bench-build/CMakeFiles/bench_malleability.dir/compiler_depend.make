# Empty compiler generated dependencies file for bench_malleability.
# This may be replaced when dependencies are built.
