file(REMOVE_RECURSE
  "../bench/bench_budget_tradeoff"
  "../bench/bench_budget_tradeoff.pdb"
  "CMakeFiles/bench_budget_tradeoff.dir/bench_budget_tradeoff.cpp.o"
  "CMakeFiles/bench_budget_tradeoff.dir/bench_budget_tradeoff.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_budget_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
