// greenhpc — command-line front end.
//
//   greenhpc trace    --region DE --days 31 [--step-min 60] [--marginal]
//                     [--seed N]                  CSV carbon-intensity trace
//   greenhpc fig1                                 embodied breakdown table
//   greenhpc carbon500                            carbon-efficiency ranking
//   greenhpc simulate --nodes 256 --region DE --days 7 [--jobs 900]
//                     [--sched easy|fcfs|conservative|carbon-easy]
//                     [--swf FILE] [--seed N]     cluster simulation summary
//   greenhpc regions                              list region presets
//   greenhpc sweep    --regions DE,FR --nodes 64,128 [--replicas 3]
//                     [--sched easy,carbon-easy]   mean±CI policy comparison
//                     [--journal DIR] [--resume |   over a parameter grid;
//                      --resume-or-start|--restart] journaled runs survive a
//                     [--retries N] [--csv FILE]   SIGKILL and resume with a
//                     [--workers N]                bit-identical digest;
//                     [--fleet-trace-out FILE]     --workers shards blocks
//                     [--postmortem-dir DIR]       across worker processes
//                     [--no-obs-ship]              with heartbeat-driven
//                                                  reassignment on death;
//                                                  the fleet flags merge
//                                                  worker traces and dump
//                                                  crash postmortems
//
// Global flags:
//   --threads N         size the worker pool (overrides GREENHPC_THREADS)
//   --trace-out FILE    record a runtime trace (Chrome trace_event JSON,
//                       loadable in chrome://tracing or ui.perfetto.dev)
//   --metrics-out FILE  dump the metrics-registry snapshot as JSON
//   --report FILE       write a per-run report (config digest, key numbers,
//                       metrics snapshot, wall time) as JSON
//
// Exit status: 0 on success, 2 on usage errors.

#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "carbon/trace_io.hpp"
#include "core/scenario.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "obs/trace.hpp"
#include "core/chaos.hpp"
#include "core/sweep.hpp"
#include "core/sweep_coordinator.hpp"
#include "core/sweep_journal.hpp"
#include "core/sweep_worker.hpp"
#include "embodied/systems.hpp"
#include "hpcsim/swf_io.hpp"
#include "procure/carbon500.hpp"
#include "sched/carbon_aware.hpp"
#include "sched/conservative.hpp"
#include "sched/easy_backfill.hpp"
#include "sched/fcfs.hpp"
#include "util/atomic_file.hpp"
#include "util/csv.hpp"
#include "util/fault_injector.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

namespace {

using namespace greenhpc;

/// Minimal --key value / --flag parser.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
        ok_ = false;
        return;
      }
      key = key.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";  // boolean flag
      }
    }
  }
  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool has(const std::string& key) const { return values_.count(key) > 0; }
  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() || it->second.empty() ? fallback : it->second;
  }
  [[nodiscard]] double num(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
};

carbon::Region parse_region(const std::string& code) {
  for (carbon::Region r : carbon::all_regions()) {
    if (code == carbon::traits(r).code || code == carbon::traits(r).name) return r;
  }
  throw InvalidArgument("unknown region code: " + code + " (try `greenhpc regions`)");
}

int cmd_regions() {
  util::Table table({"code", "region", "mean [g/kWh]", "floor", "cap"});
  for (carbon::Region r : carbon::all_regions()) {
    const auto& t = carbon::traits(r);
    table.add_row({std::string(t.code), std::string(t.name),
                   util::Table::fmt(t.mean_gkwh, 0), util::Table::fmt(t.floor_gkwh, 0),
                   util::Table::fmt(t.cap_gkwh, 0)});
  }
  std::printf("%s", table.str("Region presets").c_str());
  return 0;
}

int cmd_trace(const Args& args) {
  const carbon::Region region = parse_region(args.get("region", "DE"));
  carbon::GridModel model(region, static_cast<std::uint64_t>(args.num("seed", 1)));
  const auto trace = model.generate(
      seconds(0.0), days(args.num("days", 31.0)), minutes(args.num("step-min", 60.0)),
      args.has("marginal") ? carbon::IntensityKind::Marginal
                           : carbon::IntensityKind::Average);
  carbon::save_intensity_csv(trace, std::cout);
  return 0;
}

int cmd_fig1() {
  const embodied::ActModel model;
  util::Table table({"system", "CPU[t]", "GPU[t]", "DRAM[t]", "storage[t]", "total[t]",
                     "mem+stor[%]"});
  for (const auto& sys : embodied::fig1_systems()) {
    const auto b = embodied_breakdown(model, sys);
    table.add_row({sys.name, util::Table::fmt(b.cpu.tonnes(), 1),
                   util::Table::fmt(b.gpu.tonnes(), 1),
                   util::Table::fmt(b.dram.tonnes(), 1),
                   util::Table::fmt(b.storage.tonnes(), 1),
                   util::Table::fmt(b.total().tonnes(), 1),
                   util::Table::fmt(100.0 * b.memory_storage_share(), 1)});
  }
  std::printf("%s", table.str("Embodied carbon by component (Fig. 1 methodology)").c_str());
  return 0;
}

int cmd_carbon500() {
  const embodied::ActModel model;
  const auto ranked = procure::rank(procure::reference_list(model));
  util::Table table({"#", "system", "region", "Rmax [PF]", "GFLOP/gCO2e"});
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    table.add_row({std::to_string(i + 1), ranked[i].system,
                   std::string(carbon::traits(ranked[i].region).code),
                   util::Table::fmt(ranked[i].rmax_pflops, 1),
                   util::Table::fmt(ranked[i].score_gflops_per_gram, 2)});
  }
  std::printf("%s", table.str("Carbon500").c_str());
  return 0;
}

core::SchedulerFactory scheduler_factory(const std::string& name) {
  if (name == "fcfs") {
    return [] { return std::make_unique<sched::FcfsScheduler>(); };
  }
  if (name == "conservative") {
    return [] { return std::make_unique<sched::ConservativeBackfillScheduler>(); };
  }
  if (name == "carbon-easy") {
    return [] {
      return std::make_unique<sched::CarbonAwareEasyScheduler>(
          sched::CarbonAwareEasyScheduler::Config{},
          std::make_shared<carbon::PersistenceForecaster>());
    };
  }
  if (name == "easy") {
    return [] { return std::make_unique<sched::EasyBackfillScheduler>(); };
  }
  throw InvalidArgument("unknown scheduler: " + name +
                        " (easy|fcfs|conservative|carbon-easy)");
}

int cmd_simulate(const Args& args, obs::RunReport& report) {
  core::ScenarioConfig cfg;
  cfg.cluster.nodes = static_cast<int>(args.num("nodes", 256));
  cfg.region = parse_region(args.get("region", "DE"));
  const double span_days = args.num("days", 7.0);
  cfg.trace_span = days(span_days + 5.0);
  cfg.workload.span = days(span_days);
  cfg.workload.job_count = static_cast<int>(args.num("jobs", 900));
  cfg.workload.max_job_nodes = std::max(1, cfg.cluster.nodes / 2);
  cfg.seed = static_cast<std::uint64_t>(args.num("seed", 2023));
  core::ScenarioRunner runner(cfg);

  std::vector<hpcsim::JobSpec> jobs = runner.jobs();
  if (args.has("swf")) {
    std::ifstream swf(args.get("swf", ""));
    if (!swf) {
      std::fprintf(stderr, "cannot open SWF file: %s\n", args.get("swf", "").c_str());
      return 2;
    }
    hpcsim::SwfDefaults defaults;
    defaults.max_nodes = cfg.cluster.nodes;
    auto imported = hpcsim::load_swf(swf, defaults);
    std::fprintf(stderr, "SWF: %zu jobs imported, %d skipped\n", imported.jobs.size(),
                 imported.skipped);
    jobs = std::move(imported.jobs);
  }

  hpcsim::Simulator::Config sim_cfg;
  sim_cfg.cluster = cfg.cluster;
  sim_cfg.carbon_intensity = runner.trace_ptr();  // shared, zero-copy
  const std::size_t n_jobs = jobs.size();
  hpcsim::Simulator sim(sim_cfg, std::move(jobs));
  auto scheduler = scheduler_factory(args.get("sched", "easy"))();
  const auto result = sim.run(*scheduler);

  std::printf("scheduler:        %s\n", scheduler->name().c_str());
  std::printf("jobs completed:   %d / %zu\n", result.completed_jobs, n_jobs);
  std::printf("makespan:         %.1f h\n", result.makespan.hours());
  std::printf("energy:           %.2f MWh (idle share %.1f%%)\n",
              result.total_energy.megawatt_hours(),
              100.0 * result.idle_energy.joules() /
                  std::max(1.0, result.total_energy.joules()));
  std::printf("carbon:           %.3f tCO2e (%.1f g per delivered node-hour)\n",
              result.total_carbon.tonnes(), result.carbon_per_node_hour());
  std::printf("mean wait:        %.2f h   bounded slowdown: %.2f\n",
              result.mean_wait_hours(), result.mean_bounded_slowdown());
  std::printf("utilization:      %.1f%%\n", 100.0 * result.utilization(cfg.cluster));

  report.add_label("scheduler", scheduler->name());
  report.add("jobs", static_cast<double>(n_jobs));
  report.add("jobs_completed", static_cast<double>(result.completed_jobs));
  report.add("makespan_h", result.makespan.hours());
  report.add("energy_mwh", result.total_energy.megawatt_hours());
  report.add("carbon_t", result.total_carbon.tonnes());
  report.add("mean_wait_h", result.mean_wait_hours());
  report.add("utilization", result.utilization(cfg.cluster));
  // Resilience telemetry: zero in fault-free runs, but always reported so
  // report consumers need no schema branch.
  report.add("node_failures", static_cast<double>(result.node_failures));
  report.add("job_failures", static_cast<double>(result.job_failures));
  report.add("jobs_failed", static_cast<double>(result.jobs_failed));
  report.add("walltime_kills", static_cast<double>(result.walltime_kills));
  report.add("checkpoints_taken", static_cast<double>(result.checkpoints_taken));
  report.add("lost_node_hours", result.lost_node_hours());
  report.add("wasted_carbon_g", result.wasted_carbon.grams());
  return 0;
}

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : csv) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

/// Write `body` to `path` atomically (tmp + fsync + rename): readers never
/// observe a partial artifact, and a crash leaves any previous version
/// intact. Usage-level failure (exit 2) if unwritable.
template <typename WriteBody>
int write_artifact(const std::string& path, const char* what, WriteBody&& body) {
  try {
    util::atomic_write_file(path, [&body](std::ostream& os) { body(os); });
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot write %s file: %s\n", what, e.what());
    return 2;
  }
  return 0;
}

/// Grid construction shared by `sweep` (coordinator side) and the hidden
/// `sweep-worker` command: both must derive EXACTLY the same grid from
/// the same flags, or the worker's hello-time config digest cross-check
/// refuses the fold.
core::SweepGrid build_sweep_grid(const Args& args) {
  core::SweepGrid grid;
  grid.base.cluster.nodes = 64;
  const double span_days = args.num("days", 2.0);
  grid.base.trace_span = days(span_days + 3.0);
  grid.base.workload.span = days(span_days);
  grid.base.workload.job_count = static_cast<int>(args.num("jobs", 150));
  grid.base.workload.max_job_nodes = 32;
  grid.base.seed = static_cast<std::uint64_t>(args.num("seed", 2023));

  for (const auto& code : split_list(args.get("regions", "DE")))
    grid.regions.push_back(parse_region(code));
  for (const auto& kind : split_list(args.get("kinds", "average"))) {
    if (kind == "average") {
      grid.intensity_kinds.push_back(carbon::IntensityKind::Average);
    } else if (kind == "marginal") {
      grid.intensity_kinds.push_back(carbon::IntensityKind::Marginal);
    } else {
      throw InvalidArgument("unknown intensity kind: " + kind + " (average|marginal)");
    }
  }
  for (const auto& n : split_list(args.get("nodes", "64")))
    grid.cluster_nodes.push_back(std::atoi(n.c_str()));
  if (args.has("jobs-list")) {
    for (const auto& n : split_list(args.get("jobs-list", "")))
      grid.job_counts.push_back(std::atoi(n.c_str()));
  }
  grid.seed_replicas = static_cast<int>(args.num("replicas", 3));
  for (const auto& name : split_list(args.get("sched", "easy,carbon-easy")))
    grid.policies.push_back({name, scheduler_factory(name), nullptr});
  return grid;
}

/// Terminal-hygiene progress sink. On a TTY it redraws one `\r` status
/// line (padded to erase a longer previous draw); on a non-TTY stderr
/// (CI logs, `2>file`) it emits one complete line per update so logs
/// stay greppable instead of one carriage-return-glued mega-line. The
/// destructor closes any open TTY line, so EVERY exit path — including
/// an exception unwinding out of the sweep — leaves the cursor on a
/// fresh line before the error message prints.
class ProgressPrinter {
 public:
  explicit ProgressPrinter(std::size_t total)
      : total_(total), tty_(::isatty(::fileno(stderr)) != 0) {}
  ~ProgressPrinter() { finish(); }
  ProgressPrinter(const ProgressPrinter&) = delete;
  ProgressPrinter& operator=(const ProgressPrinter&) = delete;

  void update(std::size_t done, const std::string& extra) {
    std::string line =
        std::to_string(done) + " / " + std::to_string(total_) + " cases";
    if (!extra.empty()) line += ' ' + extra;
    if (tty_) {
      const std::size_t drawn = line.size();
      if (drawn < last_len_) line.append(last_len_ - drawn, ' ');
      last_len_ = drawn;
      std::fprintf(stderr, "\r%s", line.c_str());
      std::fflush(stderr);
      open_line_ = true;
      if (done == total_) finish();
    } else {
      std::fprintf(stderr, "%s\n", line.c_str());
    }
  }

  void finish() {
    if (open_line_) {
      std::fprintf(stderr, "\n");
      open_line_ = false;
    }
  }

 private:
  std::size_t total_;
  bool tty_;
  bool open_line_ = false;
  std::size_t last_len_ = 0;
};

std::function<void(std::size_t, std::size_t)> make_sweep_progress(
    const Args& args, std::size_t total,
    std::function<std::string()> status = nullptr) {
  if (args.has("quiet")) return nullptr;
  // --progress appends a live throughput readout from the engine's
  // sweep.cases_per_s gauge (updated before each progress call) plus an
  // optional caller-supplied status (the distributed path wires in a
  // live per-worker readout).
  const bool live_rate = args.has("progress");
  obs::Gauge& rate = obs::Registry::global().gauge("sweep.cases_per_s");
  // shared_ptr so the printer lives exactly as long as the callback: the
  // engine/coordinator drops the callback during unwind on failure, and
  // the printer's destructor flushes the final newline right there.
  auto printer = std::make_shared<ProgressPrinter>(total);
  return [printer, live_rate, &rate, status = std::move(status)](
             std::size_t done, std::size_t) {
    std::string extra;
    if (live_rate) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "(%.1f cases/s)", rate.value());
      extra = buf;
      if (status) {
        const std::string s = status();
        if (!s.empty()) extra += ' ' + s;
      }
    }
    printer->update(done, extra);
  };
}

/// How a sweep relates to any journal already in the run directory.
enum class SweepJournalMode { None, Fresh, Resume, Restart };

/// Resolve the journal flags (satellite hardening: `--resume` against a
/// missing or empty journal directory is a CLEAR error, never a silent
/// fresh start). Returns 0 and fills mode/dir, or a CLI exit code.
int resolve_journal_mode(const Args& args, SweepJournalMode& mode,
                         std::string& dir) {
  mode = SweepJournalMode::None;
  dir = args.get("journal", "");
  const int pick = (args.has("resume") ? 1 : 0) +
                   (args.has("resume-or-start") ? 1 : 0) +
                   (args.has("restart") ? 1 : 0);
  if (pick > 1) {
    std::fprintf(stderr,
                 "--resume, --resume-or-start and --restart are mutually "
                 "exclusive\n");
    return 2;
  }
  if (!args.has("journal")) {
    if (pick > 0) {
      std::fprintf(stderr, "--resume/--resume-or-start/--restart want --journal DIR\n");
      return 2;
    }
    return 0;
  }
  if (dir.empty()) {
    std::fprintf(stderr, "--journal wants a run directory\n");
    return 2;
  }
  const bool have = core::SweepJournal::exists(dir);
  if (args.has("resume")) {
    if (!have) {
      std::fprintf(stderr,
                   "cannot resume: no journal found under %s — refusing to "
                   "silently start a fresh sweep\n"
                   "  (use --resume-or-start to begin when nothing is "
                   "resumable, or drop --resume)\n",
                   dir.c_str());
      return 2;
    }
    mode = SweepJournalMode::Resume;
  } else if (args.has("resume-or-start")) {
    if (have) {
      mode = SweepJournalMode::Resume;
    } else {
      std::fprintf(stderr, "journal: nothing to resume under %s; starting fresh\n",
                   dir.c_str());
      mode = SweepJournalMode::Fresh;
    }
  } else if (args.has("restart")) {
    mode = SweepJournalMode::Restart;
  } else {
    if (have) {
      std::fprintf(stderr,
                   "journal: %s already holds a sweep journal; refusing to "
                   "overwrite completed work\n"
                   "  (use --resume to continue it, --resume-or-start to "
                   "continue-or-begin, or --restart to discard it)\n",
                   dir.c_str());
      return 2;
    }
    mode = SweepJournalMode::Fresh;
  }
  return 0;
}

/// Table + digest + quarantine printing and run-report numbers shared by
/// the in-process and distributed sweep paths.
int report_sweep_result(const Args& args, const core::SweepResult& result,
                        obs::RunReport& report) {
  util::Table table({"region", "kind", "nodes", "jobs", "policy", "carbon[t]",
                     "±95%", "MWh", "wait[h]", "util[%]", "green[%]", "done"});
  for (const auto& cell : result.cells) {
    table.add_row({std::string(carbon::traits(cell.region).code),
                   cell.kind == carbon::IntensityKind::Average ? "avg" : "marg",
                   std::to_string(cell.nodes), std::to_string(cell.jobs), cell.policy,
                   util::Table::fmt(cell.carbon_t.mean(), 2),
                   util::Table::fmt(core::SweepCellStats::ci95(cell.carbon_t), 2),
                   util::Table::fmt(cell.energy_mwh.mean(), 1),
                   util::Table::fmt(cell.wait_h.mean(), 2),
                   util::Table::fmt(100.0 * cell.utilization.mean(), 1),
                   util::Table::fmt(100.0 * cell.green_share.mean(), 1),
                   util::Table::fmt(cell.completed.mean(), 0)});
  }
  std::printf("%s", table
                        .str("Sweep: " + std::to_string(result.cases) + " cases, " +
                             std::to_string(result.cells.size()) + " cells x " +
                             std::to_string(result.replicas) + " replicas")
                        .c_str());
  std::printf("digest: %016llx (bit-identical for any --threads)\n",
              static_cast<unsigned long long>(result.digest));
  if (result.replayed_cases > 0) {
    std::printf("resumed: %zu of %zu cases replayed from the journal\n",
                result.replayed_cases, result.cases);
  }
  if (!result.failed_cases.empty()) {
    std::fprintf(stderr, "quarantined: %zu case(s) failed after retries\n",
                 result.failed_cases.size());
    const std::size_t show = std::min<std::size_t>(result.failed_cases.size(), 5);
    for (std::size_t i = 0; i < show; ++i) {
      const auto& f = result.failed_cases[i];
      std::fprintf(stderr, "  case %zu (%s): %s [%d attempts]\n", f.flat,
                   f.where.c_str(), f.error.c_str(), f.attempts);
    }
    if (show < result.failed_cases.size()) {
      std::fprintf(stderr, "  ... and %zu more\n",
                   result.failed_cases.size() - show);
    }
  }

  char digest_hex[32];
  std::snprintf(digest_hex, sizeof(digest_hex), "%016llx",
                static_cast<unsigned long long>(result.digest));
  report.add_label("sweep_digest", digest_hex);
  report.add("cases", static_cast<double>(result.cases));
  report.add("cells", static_cast<double>(result.cells.size()));
  report.add("replicas", static_cast<double>(result.replicas));
  report.add("replayed_cases", static_cast<double>(result.replayed_cases));
  report.add("failed_cases", static_cast<double>(result.failed_cases.size()));
  report.add("journal_truncations",
             static_cast<double>(result.journal_truncations));
  // Block-simulation latency percentiles from the local registry (the
  // in-process engine and the degraded fallback both record them; the
  // distributed path additionally reports fleet_block_seconds_p50/p99
  // merged from worker-shipped histograms).
  {
    const obs::StatSnapshot snap = obs::Registry::global().snapshot();
    if (const obs::HistogramSnapshot* h =
            snap.find_histogram("sweep.block_seconds");
        h != nullptr && h->total() > 0) {
      report.add("block_seconds_p50", h->percentile(0.5));
      report.add("block_seconds_p99", h->percentile(0.99));
    }
  }
  for (std::size_t i = 0; i < std::min<std::size_t>(result.failed_cases.size(), 5);
       ++i) {
    const auto& f = result.failed_cases[i];
    report.add_label("failed_case_" + std::to_string(i),
                     f.where + ": " + f.error);
  }

  if (args.has("csv")) {
    const int w = write_artifact(
        args.get("csv", ""), "sweep CSV", [&result](std::ostream& os) {
          util::CsvWriter csv(os);
          csv.write_row({"region", "kind", "nodes", "jobs", "policy", "replicas",
                         "carbon_t_mean", "carbon_t_ci95", "energy_mwh_mean",
                         "wait_h_mean", "utilization_mean", "green_share_mean",
                         "completed_mean"});
          for (const auto& cell : result.cells) {
            csv.write_row(
                {std::string(carbon::traits(cell.region).code),
                 cell.kind == carbon::IntensityKind::Average ? "average" : "marginal",
                 std::to_string(cell.nodes), std::to_string(cell.jobs), cell.policy,
                 std::to_string(cell.carbon_t.count()),
                 util::CsvWriter::fmt(cell.carbon_t.mean()),
                 util::CsvWriter::fmt(core::SweepCellStats::ci95(cell.carbon_t)),
                 util::CsvWriter::fmt(cell.energy_mwh.mean()),
                 util::CsvWriter::fmt(cell.wait_h.mean()),
                 util::CsvWriter::fmt(cell.utilization.mean()),
                 util::CsvWriter::fmt(cell.green_share.mean()),
                 util::CsvWriter::fmt(cell.completed.mean())});
          }
        });
    if (w != 0) return w;
  }
  return 0;
}

/// Absolute path of this binary (for re-exec'ing as `sweep-worker`);
/// set by main() before command dispatch.
std::string g_self_exe;

int cmd_sweep(const Args& args, obs::RunReport& report) {
  const core::SweepGrid grid = build_sweep_grid(args);
  const std::size_t block = static_cast<std::size_t>(args.num("block", 256));
  const int retries = static_cast<int>(args.num("retries", 2));
  const int workers = static_cast<int>(args.num("workers", 0));
  if (workers < 0) {
    std::fprintf(stderr, "--workers wants a non-negative count\n");
    return 2;
  }

  SweepJournalMode mode = SweepJournalMode::None;
  std::string dir;
  if (const int rc = resolve_journal_mode(args, mode, dir); rc != 0) return rc;

  if (workers == 0 &&
      (args.has("fleet-trace-out") || args.has("postmortem-dir"))) {
    std::fprintf(stderr,
                 "note: --fleet-trace-out/--postmortem-dir observe the worker "
                 "fleet; without --workers N there is none to observe\n");
  }

  if (workers > 0) {
    // Distributed sweep: shard blocks across worker processes. Each
    // worker re-derives the grid from the SAME flags (whitelisted below)
    // and cross-checks its config digest at hello, so a skewed worker is
    // rejected instead of folded.
    core::SweepCoordinator::Options copts;
    copts.workers = workers;
    copts.block = block;
    copts.case_opts.case_retries = retries;
    copts.journal_dir = mode == SweepJournalMode::None ? "" : dir;
    copts.resume = mode == SweepJournalMode::Resume;
    copts.heartbeat_interval_s = args.num("hb-interval", 0.5);
    copts.heartbeat_timeout_s = args.num("hb-timeout", 2.0);
    copts.hello_timeout_s = args.num("hello-timeout", 30.0);
    copts.lease_timeout_s = args.num("lease-timeout", 600.0);
    // Containment knobs (chaos-hardened defaults; see DESIGN.md "Failure
    // domains & containment").
    copts.progress_timeout_s = args.num("progress-timeout", 0.0);
    copts.max_respawns = static_cast<int>(args.num("max-respawns", 0));
    copts.fleet_trace_path = args.get("fleet-trace-out", "");
    copts.postmortem_dir = args.get("postmortem-dir", "");
    copts.ship_stats = !args.has("no-obs-ship");

    // Live per-worker status for --progress: the callback runs on the
    // coordinator's own event-loop thread, so reading its stats here is
    // race-free; coord is set before run() ever invokes progress.
    core::SweepCoordinator* coord = nullptr;
    copts.progress = make_sweep_progress(
        args, grid.case_count(), [&coord]() -> std::string {
          if (coord == nullptr) return "";
          std::string s;
          const auto& ws = coord->stats().workers;
          for (std::size_t k = 0; k < ws.size(); ++k) {
            if (!s.empty()) s += ' ';
            s += 'w' + std::to_string(k) + ':';
            if (ws[k].died) {
              s += "dead";
            } else if (!ws[k].ready) {
              s += "spawn";
            } else {
              s += std::to_string(ws[k].blocks) + 'b';
              if (ws[k].busy) s += '*';
            }
          }
          return '[' + s + ']';
        });

    std::vector<std::string> wargv{g_self_exe, "sweep-worker"};
    for (const char* key : {"regions", "kinds", "nodes", "jobs-list", "jobs",
                            "days", "replicas", "sched", "seed", "retries",
                            "hb-interval"}) {
      if (!args.has(key)) continue;
      wargv.push_back(std::string("--") + key);
      const std::string value = args.get(key, "");
      if (!value.empty()) wargv.push_back(value);
    }
    // Split the machine between the workers instead of oversubscribing
    // it N-fold (each worker's pool would otherwise default to every
    // hardware thread).
    const int machine =
        args.has("threads")
            ? static_cast<int>(args.num("threads", 1))
            : static_cast<int>(std::thread::hardware_concurrency());
    wargv.push_back("--threads");
    wargv.push_back(std::to_string(std::max(1, machine / workers)));
    copts.worker_argv = std::move(wargv);

    core::SweepCoordinator coordinator(std::move(copts));
    coord = &coordinator;
    const core::SweepResult result = coordinator.run(grid);
    coord = nullptr;
    const core::SweepCoordinator::Stats& st = coordinator.stats();

    const int rc = report_sweep_result(args, result, report);
    std::fprintf(stderr,
                 "workers: %d spawned, %zu death(s), %zu block(s) reassigned, "
                 "%zu heartbeat miss(es)%s\n",
                 workers, st.worker_deaths, st.blocks_reassigned,
                 st.heartbeat_misses,
                 st.degraded_in_process ? " — degraded to in-process" : "");
    if (st.stat_batches > 0 || st.trace_batches > 0 ||
        st.obs_lines_rejected > 0) {
      std::fprintf(stderr,
                   "fleet: %zu stat batch(es), %zu trace event(s) in %zu "
                   "batch(es), rtt p50 %.2f ms p99 %.2f ms, %zu obs line(s) "
                   "rejected, %zu postmortem(s)\n",
                   st.stat_batches, st.trace_events, st.trace_batches,
                   1e3 * st.rtt_p50_s, 1e3 * st.rtt_p99_s,
                   st.obs_lines_rejected, st.postmortems_written);
    }
    if (!st.fleet_trace_path.empty()) {
      std::fprintf(stderr, "fleet trace: %s\n", st.fleet_trace_path.c_str());
    }
    report.add("workers", static_cast<double>(workers));
    report.add("worker_deaths", static_cast<double>(st.worker_deaths));
    report.add("blocks_reassigned", static_cast<double>(st.blocks_reassigned));
    report.add("heartbeat_misses", static_cast<double>(st.heartbeat_misses));
    report.add("duplicate_block_records",
               static_cast<double>(st.duplicate_block_records));
    report.add("replayed_blocks", static_cast<double>(st.replayed_blocks));
    report.add("shard_generation", static_cast<double>(st.shard_generation));
    report.add("degraded_in_process", st.degraded_in_process ? 1.0 : 0.0);
    // Fleet observability rollup.
    report.add("obs_lines_rejected",
               static_cast<double>(st.obs_lines_rejected));
    report.add("stat_batches", static_cast<double>(st.stat_batches));
    report.add("trace_batches", static_cast<double>(st.trace_batches));
    report.add("trace_events", static_cast<double>(st.trace_events));
    report.add("heartbeat_rtt_p50_s", st.rtt_p50_s);
    report.add("heartbeat_rtt_p99_s", st.rtt_p99_s);
    report.add("max_lease_age_s", st.max_lease_age_s);
    report.add("postmortems_written",
               static_cast<double>(st.postmortems_written));
    if (st.block_seconds_p50_s > 0.0) {
      // Distinct key from the local-registry block_seconds_p50: a
      // degraded run legitimately reports both (fleet-shipped blocks
      // plus the in-process fallback's own).
      report.add("fleet_block_seconds_p50", st.block_seconds_p50_s);
      report.add("fleet_block_seconds_p99", st.block_seconds_p99_s);
    }
    if (!st.fleet_trace_path.empty()) {
      report.add_label("fleet_trace", st.fleet_trace_path);
    }
    for (std::size_t k = 0; k < st.workers.size(); ++k) {
      const core::SweepCoordinator::WorkerInfo& w = st.workers[k];
      const std::string p = "worker_" + std::to_string(k);
      report.add(p + "_blocks", static_cast<double>(w.blocks));
      report.add(p + "_heartbeat_misses",
                 static_cast<double>(w.heartbeat_misses));
      report.add(p + "_died", w.died ? 1.0 : 0.0);
      report.add(p + "_cases_per_s", w.cases_per_s);
      report.add(p + "_case_retries", static_cast<double>(w.case_retries));
      report.add(p + "_cases_quarantined",
                 static_cast<double>(w.cases_quarantined));
      report.add(p + "_stat_batches", static_cast<double>(w.stat_batches));
      report.add(p + "_trace_events", static_cast<double>(w.trace_events));
      report.add(p + "_rtt_p50_s", w.rtt_p50_s);
      report.add(p + "_rtt_p99_s", w.rtt_p99_s);
      if (!w.postmortem_path.empty()) {
        report.add_label(p + "_postmortem", w.postmortem_path);
      }
    }
    return rc;
  }

  // Single-process path: the original engine, with the chained journal.
  core::SweepEngine::Options opts;
  opts.block = block;
  opts.case_retries = retries;
  std::unique_ptr<core::SweepJournal> journal;
  if (mode == SweepJournalMode::Resume) {
    journal = std::make_unique<core::SweepJournal>(core::SweepJournal::resume(
        dir, grid.config_digest(), grid.case_count()));
    std::fprintf(stderr,
                 "journal: resuming from case %zu / %zu (%zu blocks proven)\n",
                 journal->resume_point(), grid.case_count(),
                 journal->completed().size());
  } else if (mode != SweepJournalMode::None) {
    journal = std::make_unique<core::SweepJournal>(core::SweepJournal::create(
        dir, grid.config_digest(), grid.case_count(), opts.block));
  }
  opts.journal = journal.get();
  opts.progress = make_sweep_progress(args, grid.case_count());
  const core::SweepResult result = core::SweepEngine(std::move(opts)).run(grid);
  return report_sweep_result(args, result, report);
}

/// Hidden command: one distributed-sweep worker process. Spawned by the
/// coordinator, never by hand — stdin/stdout ARE the protocol channel,
/// so nothing else in this path may write to stdout.
int cmd_sweep_worker(const Args& args) {
  // Chaos harness arming: the coordinator's worker_extra_args hook hands
  // each worker its fault schedule through this flag. Workers run LETHAL
  // (Kill actions really _Exit) — that is the point of the process
  // boundary fault model.
  if (args.has("chaos-spec")) {
    std::vector<util::FaultSpec> specs;
    if (!util::FaultInjector::decode(args.get("chaos-spec", ""), specs)) {
      std::fprintf(stderr, "malformed --chaos-spec\n");
      return 2;
    }
    util::FaultInjector::global().set_lethal(true);
    util::FaultInjector::global().arm(std::move(specs));
  }
  const core::SweepGrid grid = build_sweep_grid(args);
  core::SweepWorker::Options wopts;
  wopts.block = static_cast<std::size_t>(args.num("block", 256));
  wopts.heartbeat_interval_s = args.num("hb-interval", 0.5);
  wopts.shard_path = args.get("shard-path", "");
  wopts.case_opts.case_retries = static_cast<int>(args.num("retries", 2));
  // Appended by the coordinator, never typed by hand: shipping defaults
  // on, trace shipping only when a fleet trace was requested.
  wopts.ship_stats = !args.has("no-ship-stats");
  wopts.ship_trace = args.has("ship-trace");
  return core::SweepWorker(std::move(wopts)).run(grid);
}

/// `greenhpc chaos`: run N deterministic fault schedules against a real
/// coordinator + worker fleet on a micro-grid and hard-fail unless every
/// terminal state is digest-identical to the clean run or an explicitly
/// reported quarantine. The grid flags share build_sweep_grid's names but
/// default to a deliberately tiny grid — every schedule runs it to
/// completion at least once.
int cmd_chaos(const Args& args, obs::RunReport& report) {
  // Chaos-sized grid defaults; any of them can be overridden, but the
  // SAME resolved values must reach the workers, so the flag list is
  // materialized once and re-parsed through build_sweep_grid.
  std::vector<std::string> grid_flags = {
      "--regions",  args.get("regions", "DE"),
      "--nodes",    args.get("nodes", "8,12"),
      "--jobs",     args.get("jobs", "12"),
      "--days",     args.get("days", "0.1"),
      "--replicas", args.get("replicas", "3"),
      "--sched",    args.get("sched", "easy"),
      "--seed",     args.get("seed", "2023"),
  };
  // The default chaos grid spreads a jobs axis too (12 cases, 6 blocks
  // at --block 2); a user who pins --jobs without --jobs-list gets the
  // single-value axis they asked for.
  if (args.has("jobs-list") || !args.has("jobs")) {
    grid_flags.push_back("--jobs-list");
    grid_flags.push_back(args.get("jobs-list", "8,12"));
  }
  std::vector<char*> grid_argv;
  grid_argv.reserve(grid_flags.size());
  for (std::string& s : grid_flags) grid_argv.push_back(s.data());
  const Args grid_args(static_cast<int>(grid_argv.size()), grid_argv.data(), 0);
  const core::SweepGrid grid = build_sweep_grid(grid_args);

  core::ChaosOptions copts;
  copts.grid = &grid;
  copts.chaos_seed = static_cast<std::uint64_t>(args.num("chaos-seed", 1));
  copts.schedules = static_cast<int>(args.num("schedules", 10));
  copts.workers = static_cast<int>(args.num("workers", 3));
  copts.workdir = args.get("workdir", "chaos-out");
  copts.block = static_cast<std::size_t>(args.num("block", 2));
  copts.schedule_deadline_s = args.num("deadline", 120.0);
  copts.sites = split_list(args.get("sites", ""));
  if (copts.schedules < 1 || copts.workers < 1) {
    std::fprintf(stderr, "--schedules and --workers want positive counts\n");
    return 2;
  }
  ::mkdir(copts.workdir.c_str(), 0755);  // EEXIST is fine

  std::vector<std::string> wargv{g_self_exe, "sweep-worker"};
  wargv.insert(wargv.end(), grid_flags.begin(), grid_flags.end());
  wargv.push_back("--hb-interval");
  wargv.push_back(std::to_string(copts.heartbeat_interval_s));
  // One compute thread per worker: three micro-grid workers on one
  // machine must not each claim every hardware thread.
  wargv.push_back("--threads");
  wargv.push_back("1");
  copts.worker_argv = std::move(wargv);

  const bool quiet = args.has("quiet");
  copts.on_schedule = [&](const core::ChaosScheduleOutcome& out) {
    if (quiet && out.pass) return;
    std::string line = "schedule " + std::to_string(out.schedule) + ": " +
                       (out.pass ? "ok" : "FAIL");
    char hex[24];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(out.digest));
    line += std::string(" digest=") + hex;
    if (out.has_poison) {
      line += " poison=" + std::to_string(out.poison_flat) + " quarantined=" +
              std::to_string(out.failed_flats.size());
    }
    if (out.restarted) line += " coord-restart";
    if (out.worker_deaths > 0) {
      line += " deaths=" + std::to_string(out.worker_deaths);
    }
    if (out.workers_respawned > 0) {
      line += " respawned=" + std::to_string(out.workers_respawned);
    }
    if (out.workers_evicted_wedged > 0) {
      line += " wedged=" + std::to_string(out.workers_evicted_wedged);
    }
    if (out.journal_degraded) line += " journal-degraded";
    char el[32];
    std::snprintf(el, sizeof(el), " (%.2fs)", out.elapsed_s);
    line += el;
    std::fprintf(stderr, "%s\n", line.c_str());
  };

  const core::ChaosReport chaos = core::run_chaos(copts);

  std::printf("chaos: %d schedule(s), seed %llu: %s\n", copts.schedules,
              static_cast<unsigned long long>(copts.chaos_seed),
              chaos.pass ? "PASS" : "FAIL");
  std::printf("  clean digest:   %016llx\n",
              static_cast<unsigned long long>(chaos.clean_digest));
  std::printf("  poisoned:       %d schedule(s)\n", chaos.poison_schedules);
  std::printf("  coord restarts: %d schedule(s)\n", chaos.restart_schedules);
  std::printf("  failures:       %d\n", chaos.failures);
  std::printf("  determinism:    schedule %d re-run %s\n",
              chaos.determinism_schedule,
              chaos.determinism_pass ? "identical" : "DIVERGED");
  if (!chaos.events_path.empty()) {
    std::printf("  event lane:     %s\n", chaos.events_path.c_str());
  }

  report.add("schedules", static_cast<double>(copts.schedules));
  report.add("failures", static_cast<double>(chaos.failures));
  report.add("poison_schedules", static_cast<double>(chaos.poison_schedules));
  report.add("restart_schedules", static_cast<double>(chaos.restart_schedules));
  report.add("determinism_pass", chaos.determinism_pass ? 1.0 : 0.0);
  char digest_hex[24];
  std::snprintf(digest_hex, sizeof(digest_hex), "%016llx",
                static_cast<unsigned long long>(chaos.clean_digest));
  report.add_label("clean_digest", digest_hex);
  if (!chaos.events_path.empty()) {
    report.add_label("chaos_events", chaos.events_path);
  }
  // Exit 1 (not the usage code 2): the harness ran and found a
  // containment or determinism failure.
  return chaos.pass ? 0 : 1;
}

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage: greenhpc <command> [--flags]\n"
               "  help                          print this message\n"
               "  regions                       list region presets\n"
               "  trace --region DE --days 31   emit a carbon-intensity CSV\n"
               "  fig1                          embodied-carbon breakdown table\n"
               "  carbon500                     carbon-efficiency ranking\n"
               "  simulate --nodes 256 --region DE --days 7 [--sched easy]\n"
               "           [--swf trace.swf]    run a cluster simulation\n"
               "  sweep --regions DE,FR [--kinds average,marginal]\n"
               "        --nodes 64,128 [--jobs-list 150,300] [--replicas 3]\n"
               "        [--sched easy,carbon-easy] [--days 2] [--seed N]\n"
               "        [--block 256] [--quiet] [--progress] [--csv FILE]\n"
               "        [--journal DIR] [--resume | --resume-or-start | --restart]\n"
               "        [--retries N] [--workers N]\n"
               "        [--fleet-trace-out FILE] [--postmortem-dir DIR]\n"
               "        [--no-obs-ship]\n"
               "                                aggregate a parameter-grid sweep;\n"
               "                                --journal makes it crash-restartable\n"
               "                                (kill it, rerun with --resume: the\n"
               "                                digest is bit-identical), --retries\n"
               "                                bounds per-case retry before a case\n"
               "                                is quarantined instead of fatal,\n"
               "                                --workers N shards blocks across N\n"
               "                                worker processes (a killed worker's\n"
               "                                blocks are reassigned; the digest\n"
               "                                stays bit-identical);\n"
               "                                --fleet-trace-out merges every\n"
               "                                worker's spans into one Chrome trace\n"
               "                                (one lane per worker + coordinator),\n"
               "                                --postmortem-dir collects flight-\n"
               "                                recorder JSONL dumps for dead\n"
               "                                workers, --no-obs-ship disables\n"
               "                                metric shipping (digests never\n"
               "                                depend on it either way)\n"
               "  chaos [--chaos-seed N] [--schedules N] [--workers N]\n"
               "        [--sites a,b,...] [--workdir DIR] [--block N]\n"
               "        [--deadline SECS] [--quiet]\n"
               "                                drive N deterministic fault\n"
               "                                schedules (worker kills, wedges,\n"
               "                                torn journals, poisoned cases,\n"
               "                                coordinator restarts) against a\n"
               "                                real worker fleet on a micro-grid;\n"
               "                                fails unless every terminal state\n"
               "                                is digest-identical to the clean\n"
               "                                run or an explicitly reported\n"
               "                                quarantine, and re-runs one\n"
               "                                schedule to prove determinism\n"
               "global flags:\n"
               "  --threads N         worker-pool size (overrides GREENHPC_THREADS)\n"
               "  --trace-out FILE    runtime trace (Chrome trace_event JSON,\n"
               "                      open in chrome://tracing / ui.perfetto.dev)\n"
               "  --metrics-out FILE  metrics-registry snapshot as JSON\n"
               "  --report FILE       per-run report JSON (config digest, key\n"
               "                      numbers, metrics, wall time)\n");
}

int usage() {
  print_usage(stderr);
  return 2;
}

bool known_command(const std::string& command) {
  // `sweep-worker` is deliberately absent from the usage text: it is the
  // coordinator's re-exec target, not an operator command.
  return command == "regions" || command == "trace" || command == "fig1" ||
         command == "carbon500" || command == "simulate" || command == "sweep" ||
         command == "sweep-worker" || command == "chaos";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    print_usage(stdout);
    return 0;
  }
  if (!known_command(command)) {
    std::fprintf(stderr, "unknown command: %s\n", command.c_str());
    return usage();
  }
  Args args(argc, argv, 2);
  if (!args.ok()) return usage();
  {
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
      buf[n] = '\0';
      g_self_exe = buf;
    } else {
      g_self_exe = argv[0];
    }
  }

  const std::string trace_out = args.get("trace-out", "");
  const std::string metrics_out = args.get("metrics-out", "");
  const std::string report_out = args.get("report", "");

  obs::RunReport report;
  report.tool = "greenhpc " + command;
  for (int i = 1; i < argc; ++i) {
    if (i > 1) report.config += ' ';
    report.config += argv[i];
  }
  report.config_digest = obs::fnv1a(report.config);

  int ret = 2;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    if (args.has("threads")) {
      const int n = static_cast<int>(args.num("threads", 0));
      if (n <= 0) {
        std::fprintf(stderr, "--threads wants a positive count\n");
        return 2;
      }
      util::ThreadPool::configure_global(static_cast<std::size_t>(n));
    }
    if (!trace_out.empty()) obs::Tracer::set_enabled(true);
    if (command == "regions") ret = cmd_regions();
    if (command == "trace") ret = cmd_trace(args);
    if (command == "fig1") ret = cmd_fig1();
    if (command == "carbon500") ret = cmd_carbon500();
    if (command == "simulate") ret = cmd_simulate(args, report);
    if (command == "sweep") ret = cmd_sweep(args, report);
    if (command == "sweep-worker") ret = cmd_sweep_worker(args);
    if (command == "chaos") ret = cmd_chaos(args, report);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    ret = 2;
  }
  report.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  // Drain observability artifacts after the command finishes: the pool is
  // quiescent here, so the tracer's drain contract holds.
  if (!trace_out.empty()) {
    obs::Tracer::set_enabled(false);
    const int w = write_artifact(trace_out, "trace", [](std::ostream& os) {
      obs::Tracer::write_chrome_json(os);
    });
    if (ret == 0) ret = w;
  }
  if (!metrics_out.empty()) {
    const int w = write_artifact(metrics_out, "metrics", [](std::ostream& os) {
      obs::Registry::global().write_json(os);
    });
    if (ret == 0) ret = w;
  }
  if (!report_out.empty()) {
    const int w = write_artifact(report_out, "report", [&report](std::ostream& os) {
      report.write_json(os);
    });
    if (ret == 0) ret = w;
  }
  return ret;
}
