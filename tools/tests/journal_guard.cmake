# CLI-level resume-mode guard rails, run as a ctest:
#   cmake -DCLI=<greenhpc binary> -DWORKDIR=<scratch dir> -P journal_guard.cmake
#
# The satellite contract: --resume over nothing resumable is a clear error
# (never a silent fresh start), a bare --journal refuses to clobber
# completed work, --resume-or-start takes whichever branch applies, and
# --restart is the explicit discard.

if(NOT DEFINED CLI OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "usage: cmake -DCLI=... -DWORKDIR=... -P journal_guard.cmake")
endif()

file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")

set(SWEEP_ARGS sweep --quiet --regions DE --kinds average --nodes 64
    --jobs 40 --days 1 --replicas 2 --sched easy --block 4)

function(run_sweep rc_var err_var)
  execute_process(
    COMMAND ${CLI} ${SWEEP_ARGS} ${ARGN}
    WORKING_DIRECTORY "${WORKDIR}"
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
  set(${rc_var} "${rc}" PARENT_SCOPE)
  set(${err_var} "${err}" PARENT_SCOPE)
endfunction()

# 1. --resume with nothing resumable: a clear refusal, exit nonzero.
run_sweep(rc err --journal jd --resume)
if(rc EQUAL 0 OR NOT err MATCHES "cannot resume: no journal found")
  message(FATAL_ERROR "--resume over a missing journal must refuse loudly "
                      "(rc=${rc}):\n${err}")
endif()

# 2. --resume-or-start with nothing resumable: starts fresh, says so.
run_sweep(rc err --journal jd --resume-or-start)
if(NOT rc EQUAL 0 OR NOT err MATCHES "starting fresh")
  message(FATAL_ERROR "--resume-or-start must begin when nothing is resumable "
                      "(rc=${rc}):\n${err}")
endif()

# 3. A bare --journal over the now-existing journal: refuses to clobber.
run_sweep(rc err --journal jd)
if(rc EQUAL 0 OR NOT err MATCHES "already holds a sweep journal")
  message(FATAL_ERROR "bare --journal must refuse to overwrite completed work "
                      "(rc=${rc}):\n${err}")
endif()

# 4. --resume over the completed journal: pure replay, exit 0.
run_sweep(rc err --journal jd --resume)
if(NOT rc EQUAL 0 OR NOT err MATCHES "resuming from case")
  message(FATAL_ERROR "--resume over a complete journal must replay "
                      "(rc=${rc}):\n${err}")
endif()

# 5. --restart: the explicit discard path still works.
run_sweep(rc err --journal jd --restart)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--restart must discard and rerun (rc=${rc}):\n${err}")
endif()

# 6. The modes are mutually exclusive.
run_sweep(rc err --journal jd --resume --restart)
if(rc EQUAL 0)
  message(FATAL_ERROR "--resume --restart together must be rejected")
endif()

message(STATUS "journal guard rails hold: refuse-to-clobber, loud --resume, "
               "resume-or-start, restart")
