# CLI-level distributed digest gate, run as a ctest:
#   cmake -DCLI=<greenhpc binary> -DWORKDIR=<scratch dir> -P distributed_digest.cmake
#
# Runs the same small sweep single-process and with 2 worker processes and
# requires the two printed digests to be bit-identical — the coordinator
# contract observable from the outside, with no test hooks.

if(NOT DEFINED CLI OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "usage: cmake -DCLI=... -DWORKDIR=... -P distributed_digest.cmake")
endif()

file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")

set(SWEEP_ARGS sweep --quiet --regions DE,FR --kinds average --nodes 64
    --jobs 60 --days 1 --replicas 2 --sched easy,carbon-easy --block 4)

function(run_sweep out_var)
  execute_process(
    COMMAND ${CLI} ${SWEEP_ARGS} ${ARGN}
    WORKING_DIRECTORY "${WORKDIR}"
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "sweep ${ARGN} exited ${rc}:\n${out}\n${err}")
  endif()
  string(REGEX MATCH "digest: ([0-9a-f]+)" _ "${out}")
  if(NOT CMAKE_MATCH_1)
    message(FATAL_ERROR "sweep ${ARGN} printed no digest line:\n${out}")
  endif()
  set(${out_var} "${CMAKE_MATCH_1}" PARENT_SCOPE)
endfunction()

run_sweep(single)
run_sweep(distributed --workers 2)

if(NOT single STREQUAL distributed)
  message(FATAL_ERROR "distributed sweep digest diverged: single-process "
                      "${single} vs --workers 2 ${distributed}")
endif()
message(STATUS "digest ${single} bit-identical single-process and --workers 2")
